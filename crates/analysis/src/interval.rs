//! Interval (value-range) analysis: a forward dataflow on the shared
//! worklist solver that bounds every integer SSA value with a closed
//! interval `[lo, hi]`, precise enough to prove variable-index memory
//! accesses in-bounds (`0 ≤ index < count` along **all** paths).
//!
//! The obligation pruner ([`crate::reach`]) consumes these proofs: a store
//! through a `gep` whose index is proven in-bounds for every pointee
//! cannot overflow into a neighboring object, so it is not an
//! overflow-capable write and the objects adjacent to its targets need no
//! protection on its account.
//!
//! # Lattice
//!
//! A fact is `None` (unreachable — the optimistic ⊤) or an `Env`: a map
//! from [`ValueId`] to [`Interval`] (an absent key means the full range,
//! the per-variable ⊥) plus a map of *relational upper bounds* `v ≤ w + k`
//! against non-constant SSA values `w`. The interval join widens with a
//! *threshold set* harvested from the function's integer constants (each
//! `c` contributes `c−1`, `c`, `c+1`, plus 0 and the i64 extremes):
//! unequal bounds snap outward to the nearest threshold, so every
//! per-variable chain is finite and the solver converges without giving
//! up the loop-bound constants that in-bounds proofs actually need
//! (`i < N` refinement keeps `N−1`).
//!
//! # Relational facts
//!
//! Guards against a *non-constant* bound (`i < len`) record `i ≤ len − 1`
//! symbolically. Because both sides are SSA values, the relation can never
//! be invalidated by a later assignment — there is no kill set — so it
//! survives until a join drops it (relations meet by key intersection,
//! keeping the weaker offset). At query time the relation is substituted
//! one level deep: `hi(i) = min(hi(i), hi(len) + k)`, which resolves
//! guards whose bound only becomes constant *after* the guard (`if i <
//! len { if len <= 8 { a[i] } }`) and bounds seeded per calling context.
//! Offsets are clamped to [`REL_K_MAX`] and each value keeps at most
//! [`REL_MAX_TERMS`] relations, which bounds the lattice height.
//!
//! Branch refinement and phi selection both live in the solver's
//! [`DataflowAnalysis::edge`] hook: crossing `pred → target` first clamps
//! the ranges of the compared operands according to the branch condition's
//! outcome on that edge, then binds each phi in `target` to its
//! edge-specific operand range (intervals and relations alike).
//!
//! # Unsigned guards
//!
//! `a <u b` with `b` statically non-negative implies `0 ≤ a ≤ b − 1` even
//! when `a`'s own range spans negatives: a negative signed `a`
//! reinterprets as a huge unsigned value and fails the test. A single
//! `i ult len` guard therefore proves both bounds of an index. No
//! refinement is sound when the bound side may be negative (its unsigned
//! reinterpretation would be enormous), and the *false* edge of such a
//! guard refines nothing (`i ≥u len` is the disjunction `i ≥ len ∨ i <
//! 0`).

use crate::dataflow::{solve, DataflowAnalysis, Direction, SolveResult};
use pythia_ir::{BinOp, BlockId, CmpPred, Function, Inst, ValueId, ValueKind};
use std::collections::{BTreeMap, BTreeSet};

/// Largest |k| kept in a relational fact `v ≤ w + k`. Clamping the offset
/// bounds the relational lattice height (the join takes the max offset, so
/// a loop can only creep an offset upward `2·REL_K_MAX` times before the
/// fact is dropped).
pub const REL_K_MAX: i64 = 4096;

/// Most relations retained per value; further (deterministically later in
/// `ValueId` order) bounds are dropped, which is sound — dropping an upper
/// bound only weakens the fact.
pub const REL_MAX_TERMS: usize = 8;

/// A closed interval `[lo, hi]` over `i64`. Empty intervals are never
/// constructed (refinement that would empty a range leaves it untouched —
/// the edge is then infeasible but still modeled conservatively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range (the per-variable ⊥).
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The singleton interval `[c, c]`.
    pub fn exact(c: i64) -> Self {
        Interval { lo: c, hi: c }
    }

    /// Whether this is the full (uninformative) range.
    pub fn is_full(&self) -> bool {
        *self == Self::FULL
    }

    /// Whether every value in the interval lies in `[0, count)`.
    pub fn within_bounds(&self, count: u64) -> bool {
        self.lo >= 0 && u64::try_from(self.hi).map(|h| h < count).unwrap_or(false)
    }

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    fn sub(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
        }
    }

    fn mul(self, other: Interval) -> Interval {
        let candidates = [
            self.lo.saturating_mul(other.lo),
            self.lo.saturating_mul(other.hi),
            self.hi.saturating_mul(other.lo),
            self.hi.saturating_mul(other.hi),
        ];
        Interval {
            lo: *candidates.iter().min().unwrap(),
            hi: *candidates.iter().max().unwrap(),
        }
    }
}

/// Relational upper bounds of one value: `v ≤ w + k` for each entry
/// `(w, k)`. `w` is always a non-constant SSA value.
type UpperBounds = BTreeMap<ValueId, i64>;

/// The reachable-path fact: per-value intervals plus relational upper
/// bounds. Absent interval key = full range; absent relation = no bound.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Env {
    iv: BTreeMap<ValueId, Interval>,
    ub: BTreeMap<ValueId, UpperBounds>,
}

impl Env {
    /// Record `v ≤ w + k`, clamping the offset and the per-value term
    /// count (both for lattice-height reasons, both weakening-only).
    fn bound(&mut self, v: ValueId, w: ValueId, k: i64) {
        if k.abs() > REL_K_MAX {
            return;
        }
        let terms = self.ub.entry(v).or_default();
        match terms.get(&w) {
            // Keep the tighter (smaller) offset on in-path re-derivation.
            Some(&old) if old <= k => {}
            _ => {
                terms.insert(w, k);
            }
        }
        while terms.len() > REL_MAX_TERMS {
            let last = *terms.keys().next_back().expect("non-empty");
            terms.remove(&last);
        }
    }
}

/// `None` = block not (yet) reachable.
type Fact = Option<Env>;

struct RangeAnalysis {
    /// Sorted widening thresholds (always contains `i64::MIN`, 0,
    /// `i64::MAX`).
    thresholds: Vec<i64>,
    /// Intervals assumed for specific values (typically parameters, seeded
    /// from a calling context's constant arguments) at function entry.
    param_seeds: BTreeMap<ValueId, Interval>,
}

impl RangeAnalysis {
    fn for_function(f: &Function, param_seeds: BTreeMap<ValueId, Interval>) -> Self {
        let mut ts: BTreeSet<i64> = BTreeSet::new();
        ts.insert(i64::MIN);
        ts.insert(0);
        ts.insert(i64::MAX);
        let mut thresholds_around = |c: i64| {
            ts.insert(c.saturating_sub(1));
            ts.insert(c);
            ts.insert(c.saturating_add(1));
        };
        for v in f.value_ids() {
            if let ValueKind::ConstInt(c) = f.value(v).kind {
                thresholds_around(c);
            }
        }
        // Seeded bounds are as load-bearing as in-function constants:
        // without matching thresholds a loop join would widen straight
        // past them.
        for iv in param_seeds.values() {
            thresholds_around(iv.lo);
            thresholds_around(iv.hi);
        }
        RangeAnalysis {
            thresholds: ts.into_iter().collect(),
            param_seeds,
        }
    }

    /// Widen `v` down to the nearest threshold `≤ v`.
    fn widen_down(&self, v: i64) -> i64 {
        match self.thresholds.binary_search(&v) {
            Ok(_) => v,
            Err(0) => i64::MIN,
            Err(i) => self.thresholds[i - 1],
        }
    }

    /// Widen `v` up to the nearest threshold `≥ v`.
    fn widen_up(&self, v: i64) -> i64 {
        match self.thresholds.binary_search(&v) {
            Ok(_) => v,
            Err(i) if i < self.thresholds.len() => self.thresholds[i],
            Err(_) => i64::MAX,
        }
    }

    /// Widened join: equal bounds are kept exactly; unequal bounds snap
    /// outward to the nearest threshold. Commutative, and each bound can
    /// only move a threshold-count number of times — the termination
    /// argument for loops.
    fn join(&self, a: Interval, b: Interval) -> Interval {
        let lo = if a.lo == b.lo {
            a.lo
        } else {
            self.widen_down(a.lo.min(b.lo))
        };
        let hi = if a.hi == b.hi {
            a.hi
        } else {
            self.widen_up(a.hi.max(b.hi))
        };
        Interval { lo, hi }
    }

    fn range_of(f: &Function, env: &Env, v: ValueId) -> Interval {
        match f.value(v).kind {
            ValueKind::ConstInt(c) => Interval::exact(c),
            _ => env.iv.get(&v).copied().unwrap_or(Interval::FULL),
        }
    }

    /// [`Self::range_of`] with relational upper bounds substituted one
    /// level deep: `hi(v) = min(hi(v), min over v ≤ w + k of hi(w) + k)`.
    /// One level avoids cycles (`a ≤ b, b ≤ a`); chains still resolve
    /// because [`Env::bound`] shifts transitive offsets in at derivation
    /// time.
    fn resolved_range(f: &Function, env: &Env, v: ValueId) -> Interval {
        let base = Self::range_of(f, env, v);
        let Some(terms) = env.ub.get(&v) else {
            return base;
        };
        let mut hi = base.hi;
        for (&w, &k) in terms {
            let wr = Self::range_of(f, env, w);
            if wr.hi != i64::MAX {
                hi = hi.min(wr.hi.saturating_add(k));
            }
        }
        if hi < base.lo {
            // The relations make this point infeasible; stay conservative.
            return base;
        }
        Interval { lo: base.lo, hi }
    }

    /// Transfer one instruction. Only integer-valued results are tracked;
    /// untracked instructions map to the absent (full) range.
    fn transfer_inst(&self, f: &Function, env: &mut Env, iv: ValueId) {
        let Some(inst) = f.inst(iv) else { return };
        let range = match inst {
            Inst::Bin { op, lhs, rhs } => {
                let l = Self::range_of(f, env, *lhs);
                let r = Self::range_of(f, env, *rhs);
                // `v = w ± c` inherits w's relational bounds shifted by c
                // (and `v ≤ w ± c` itself): the exact-arithmetic cases the
                // guard patterns produce.
                let shifted = match (op, &f.value(*lhs).kind, &f.value(*rhs).kind) {
                    (BinOp::Add, _, ValueKind::ConstInt(c)) => Some((*lhs, *c)),
                    (BinOp::Add, ValueKind::ConstInt(c), _) => Some((*rhs, *c)),
                    (BinOp::Sub, _, ValueKind::ConstInt(c)) => Some((*lhs, -*c)),
                    _ => None,
                };
                if let Some((w, c)) = shifted {
                    if !matches!(f.value(w).kind, ValueKind::ConstInt(_)) {
                        let inherited: Vec<(ValueId, i64)> = env
                            .ub
                            .get(&w)
                            .map(|ts| ts.iter().map(|(&u, &k)| (u, k.saturating_add(c))).collect())
                            .unwrap_or_default();
                        env.bound(iv, w, c);
                        for (u, k) in inherited {
                            env.bound(iv, u, k);
                        }
                    }
                }
                match op {
                    BinOp::Add => Some(l.add(r)),
                    BinOp::Sub => Some(l.sub(r)),
                    BinOp::Mul => Some(l.mul(r)),
                    _ => None,
                }
            }
            Inst::Icmp { .. } => Some(Interval { lo: 0, hi: 1 }),
            Inst::Select {
                on_true, on_false, ..
            } => {
                let t = Self::range_of(f, env, *on_true);
                let e = Self::range_of(f, env, *on_false);
                // Plain (unwidened) hull: select has no back edge.
                Some(Interval {
                    lo: t.lo.min(e.lo),
                    hi: t.hi.max(e.hi),
                })
            }
            // Phi ranges are bound on the incoming edges (`edge` hook);
            // the block's own transfer must not clobber them.
            Inst::Phi { .. } => return,
            // Loads, calls, casts and pointers stay untracked (full).
            _ => None,
        };
        match range {
            Some(r) if !r.is_full() && f.value(iv).ty.is_int() => {
                env.iv.insert(iv, r);
            }
            _ => {
                env.iv.remove(&iv);
            }
        }
    }

    /// Clamp `(lhs, rhs)` ranges under the assumption `lhs pred rhs` holds.
    /// Returns `None` when the predicate supports no interval refinement.
    fn refine(pred: CmpPred, l: Interval, r: Interval) -> Option<(Interval, Interval)> {
        let clamp = |iv: Interval, lo: i64, hi: i64| -> Interval {
            let nl = iv.lo.max(lo);
            let nh = iv.hi.min(hi);
            if nl <= nh {
                Interval { lo: nl, hi: nh }
            } else {
                // Infeasible edge; keep the unrefined range (sound).
                iv
            }
        };
        match pred {
            CmpPred::Eq => {
                let lo = l.lo.max(r.lo);
                let hi = l.hi.min(r.hi);
                if lo <= hi {
                    Some((Interval { lo, hi }, Interval { lo, hi }))
                } else {
                    None
                }
            }
            CmpPred::Ne => None,
            CmpPred::Slt => Some((
                clamp(l, i64::MIN, r.hi.saturating_sub(1)),
                clamp(r, l.lo.saturating_add(1), i64::MAX),
            )),
            CmpPred::Sle => Some((clamp(l, i64::MIN, r.hi), clamp(r, l.lo, i64::MAX))),
            CmpPred::Sgt => Some((
                clamp(l, r.lo.saturating_add(1), i64::MAX),
                clamp(r, i64::MIN, l.hi.saturating_sub(1)),
            )),
            CmpPred::Sge => Some((clamp(l, r.lo, i64::MAX), clamp(r, i64::MIN, l.hi))),
            CmpPred::Ult | CmpPred::Ule | CmpPred::Ugt | CmpPred::Uge => {
                // Normalize to `small ≤u bound` (strict or not). When the
                // bound side is statically non-negative, the comparison
                // pins the small side into `[0, bound]` — a negative
                // signed value reinterprets as a huge unsigned one and
                // fails the test — and the bound side to at least the
                // small side's unsigned minimum, `max(lo, 0)`. A possibly
                // negative bound supports no refinement at all.
                let strict = matches!(pred, CmpPred::Ult | CmpPred::Ugt);
                let small_first = matches!(pred, CmpPred::Ult | CmpPred::Ule);
                let (a, bnd) = if small_first { (l, r) } else { (r, l) };
                if bnd.lo < 0 {
                    return None;
                }
                let off = i64::from(strict);
                let na = clamp(a, 0, bnd.hi.saturating_sub(off));
                let nb = clamp(bnd, a.lo.max(0).saturating_add(off), i64::MAX);
                Some(if small_first { (na, nb) } else { (nb, na) })
            }
        }
    }

    /// Record the relational fact a taken guard edge establishes against a
    /// *non-constant* bound (`l pred r` just held). Signed less-than forms
    /// are unconditionally sound; unsigned forms additionally require the
    /// bound side to be statically non-negative (same wrap argument as
    /// [`Self::refine`]).
    fn relate(pred: CmpPred, env: &mut Env, f: &Function, lhs: ValueId, rhs: ValueId) {
        let is_const = |v: ValueId| matches!(f.value(v).kind, ValueKind::ConstInt(_));
        let lhs_nonneg = Self::range_of(f, env, lhs).lo >= 0;
        let rhs_nonneg = Self::range_of(f, env, rhs).lo >= 0;
        let bounds: &[(ValueId, ValueId, i64)] = match pred {
            CmpPred::Slt => &[(lhs, rhs, -1)],
            CmpPred::Sle => &[(lhs, rhs, 0)],
            CmpPred::Sgt => &[(rhs, lhs, -1)],
            CmpPred::Sge => &[(rhs, lhs, 0)],
            CmpPred::Ult if rhs_nonneg => &[(lhs, rhs, -1)],
            CmpPred::Ule if rhs_nonneg => &[(lhs, rhs, 0)],
            CmpPred::Ugt if lhs_nonneg => &[(rhs, lhs, -1)],
            CmpPred::Uge if lhs_nonneg => &[(rhs, lhs, 0)],
            CmpPred::Eq => &[(lhs, rhs, 0), (rhs, lhs, 0)],
            _ => &[],
        };
        for &(small, big, k) in bounds {
            if !is_const(small) && !is_const(big) {
                env.bound(small, big, k);
            }
        }
    }

    fn negate(pred: CmpPred) -> CmpPred {
        match pred {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Slt => CmpPred::Sge,
            CmpPred::Sle => CmpPred::Sgt,
            CmpPred::Sgt => CmpPred::Sle,
            CmpPred::Sge => CmpPred::Slt,
            CmpPred::Ult => CmpPred::Uge,
            CmpPred::Ule => CmpPred::Ugt,
            CmpPred::Ugt => CmpPred::Ule,
            CmpPred::Uge => CmpPred::Ult,
        }
    }
}

impl DataflowAnalysis for RangeAnalysis {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _f: &Function, _bb: BlockId) -> Fact {
        Some(Env {
            iv: self.param_seeds.clone(),
            ub: BTreeMap::new(),
        })
    }

    fn top(&self, _f: &Function) -> Fact {
        None
    }

    fn meet(&self, a: &Fact, b: &Fact) -> Fact {
        match (a, b) {
            (None, x) | (x, None) => x.clone(),
            (Some(a), Some(b)) => {
                // Pointwise widened join; keys absent on either side are
                // full there, so the join is full (drop the key).
                let mut iv = BTreeMap::new();
                for (v, ia) in &a.iv {
                    if let Some(ib) = b.iv.get(v) {
                        let j = self.join(*ia, *ib);
                        if !j.is_full() {
                            iv.insert(*v, j);
                        }
                    }
                }
                // Relations survive a join only when both paths carry
                // them; the joined offset is the weaker (larger) one.
                let mut ub = BTreeMap::new();
                for (v, ta) in &a.ub {
                    if let Some(tb) = b.ub.get(v) {
                        let mut terms = UpperBounds::new();
                        for (w, ka) in ta {
                            if let Some(kb) = tb.get(w) {
                                terms.insert(*w, (*ka).max(*kb));
                            }
                        }
                        if !terms.is_empty() {
                            ub.insert(*v, terms);
                        }
                    }
                }
                Some(Env { iv, ub })
            }
        }
    }

    fn transfer(&self, f: &Function, bb: BlockId, fact: &Fact) -> Fact {
        let mut out = fact.clone()?;
        for &iv in &f.block(bb).insts {
            self.transfer_inst(f, &mut out, iv);
        }
        Some(out)
    }

    fn edge(&self, f: &Function, from: BlockId, to: BlockId, fact: &Fact) -> Fact {
        let Some(env) = fact else { return None };
        let mut out = env.clone();

        // Branch-condition refinement: the edge taken tells us the
        // condition's outcome (unless both targets coincide).
        if let Some(Inst::Br {
            cond,
            then_bb,
            else_bb,
        }) = f.terminator(from)
        {
            if then_bb != else_bb {
                if let Some(Inst::Icmp { pred, lhs, rhs }) = f.inst(*cond) {
                    let effective = if to == *then_bb {
                        *pred
                    } else {
                        Self::negate(*pred)
                    };
                    let l = Self::range_of(f, &out, *lhs);
                    let r = Self::range_of(f, &out, *rhs);
                    if let Some((nl, nr)) = Self::refine(effective, l, r) {
                        for (v, iv) in [(*lhs, nl), (*rhs, nr)] {
                            if !matches!(f.value(v).kind, ValueKind::ConstInt(_)) && !iv.is_full() {
                                out.iv.insert(v, iv);
                            }
                        }
                    }
                    Self::relate(effective, &mut out, f, *lhs, *rhs);
                }
            }
        }

        // Phi selection: in `to`, each phi takes exactly the operand
        // flowing along this edge; bind its (refined) range and, for a
        // non-constant operand, its relations plus `phi ≤ operand`.
        let mut phi_bindings: Vec<(ValueId, ValueId, Interval)> = Vec::new();
        for &iv in &f.block(to).insts {
            if let Some(Inst::Phi { incomings }) = f.inst(iv) {
                if !f.value(iv).ty.is_int() {
                    continue;
                }
                for (pb, pv) in incomings {
                    if *pb == from {
                        phi_bindings.push((iv, *pv, Self::range_of(f, &out, *pv)));
                    }
                }
            }
        }
        for (v, pv, r) in phi_bindings {
            if r.is_full() {
                out.iv.remove(&v);
            } else {
                out.iv.insert(v, r);
            }
            out.ub.remove(&v);
            if !matches!(f.value(pv).kind, ValueKind::ConstInt(_)) {
                let inherited: Vec<(ValueId, i64)> = out
                    .ub
                    .get(&pv)
                    .map(|ts| ts.iter().map(|(&u, &k)| (u, k)).collect())
                    .unwrap_or_default();
                out.bound(v, pv, 0);
                for (u, k) in inherited {
                    out.bound(v, u, k);
                }
            }
        }
        Some(out)
    }
}

/// Per-function value-range results, queryable at any program point.
pub struct ValueRanges {
    analysis: RangeAnalysis,
    result: SolveResult<Fact>,
}

/// Compute value ranges for one function.
pub fn value_ranges(f: &Function) -> ValueRanges {
    value_ranges_seeded(f, &[])
}

/// [`value_ranges`] with assumed entry intervals for specific values —
/// used by the context-sensitive pruner to replay a function under one
/// calling context (parameters pinned to the callsite's constant
/// arguments). Passing seeds that over-approximate every caller keeps the
/// result sound for that caller set; the unseeded form assumes nothing.
pub fn value_ranges_seeded(f: &Function, seeds: &[(ValueId, Interval)]) -> ValueRanges {
    let analysis = RangeAnalysis::for_function(f, seeds.iter().copied().collect());
    let result = solve(f, &analysis);
    ValueRanges { analysis, result }
}

impl ValueRanges {
    /// Whether the fixpoint converged (it can only fail to on the solver's
    /// fuel fuse; callers must then treat every range as full).
    pub fn converged(&self) -> bool {
        self.result.converged
    }

    /// The interval of `v` at the program point **just before** `at`
    /// executes (replaying the containing block from its input fact, with
    /// relational upper bounds substituted). Returns the full range when
    /// the block is statically unreachable or the fixpoint did not
    /// converge — both are sound for bound proofs.
    pub fn range_before(&self, f: &Function, at: ValueId, v: ValueId) -> Interval {
        if !self.result.converged {
            return Interval::FULL;
        }
        let Some(bb) = f.block_of(at) else {
            return Interval::FULL;
        };
        let Some(input) = self.result.input(bb) else {
            // Unreachable code: any claim holds; FULL keeps callers honest.
            return Interval::FULL;
        };
        let mut env = input.clone();
        for &iv in &f.block(bb).insts {
            if iv == at {
                break;
            }
            self.analysis.transfer_inst(f, &mut env, iv);
        }
        RangeAnalysis::resolved_range(f, &env, v)
    }

    /// Whether block `bb` is reachable under the analysis.
    pub fn block_reachable(&self, bb: BlockId) -> bool {
        self.result.input(bb).is_some() || !self.result.converged
    }
}

/// Proof query used by the pruner: is the `gep` at `(f, gep_inst)` with
/// the given `index` value provably in `[0, count)` at that point?
pub fn index_in_bounds(
    f: &Function,
    ranges: &ValueRanges,
    gep_inst: ValueId,
    index: ValueId,
    count: u64,
) -> bool {
    // Constant indexes need no dataflow.
    if let ValueKind::ConstInt(c) = f.value(index).kind {
        return c >= 0 && (c as u64) < count;
    }
    ranges
        .range_before(f, gep_inst, index)
        .within_bounds(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Ty};

    #[test]
    fn constants_and_arithmetic_have_exact_ranges() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let x = b.const_i64(5);
        let y = b.const_i64(7);
        let s = b.add(x, y);
        let d = b.sub(s, x);
        b.ret(Some(d));
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert_eq!(r.range_before(&f, d, s), Interval::exact(12));
        // Before `ret`, d = s - x = 7.
        let ret = *f.block(f.entry()).insts.last().unwrap();
        assert_eq!(r.range_before(&f, ret, d), Interval::exact(7));
    }

    #[test]
    fn branch_refinement_clamps_the_taken_edge() {
        // if (n < 8) { use n } else { use n }
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let n = b.func().arg(0);
        let eight = b.const_i64(8);
        let c = b.icmp(CmpPred::Slt, n, eight);
        b.br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        let tv = b.add(n, one);
        b.ret(Some(tv));
        b.switch_to(e);
        let ev = b.add(n, one);
        b.ret(Some(ev));
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        // In the then-arm, n ≤ 7; in the else-arm, n ≥ 8.
        assert_eq!(r.range_before(&f, tv, n).hi, 7);
        assert!(r.range_before(&f, tv, n).lo == i64::MIN);
        assert_eq!(r.range_before(&f, ev, n).lo, 8);
    }

    #[test]
    fn counted_loop_index_is_proven_in_bounds() {
        // i = 0; while (i < 16) { access buf[i]; i = i + 1; }
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let head = b.new_block("head");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let buf = b.alloca_n(Ty::I64, 16);
        let zero = b.const_i64(0);
        let sixteen = b.const_i64(16);
        let one = b.const_i64(1);
        b.jmp(head);
        b.switch_to(head);
        let entry = b.func().entry();
        let i = b.phi(vec![(entry, zero)]);
        let c = b.icmp(CmpPred::Slt, i, sixteen);
        b.br(c, body, exit);
        b.switch_to(body);
        let p = b.gep(buf, i);
        b.store(zero, p);
        let inext = b.add(i, one);
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        // Wire the back-edge incoming: body -> inext.
        let body_bb = f.block_of(p).unwrap();
        if let Some(pythia_ir::Inst::Phi { incomings }) = f.inst_mut(i) {
            incomings.push((body_bb, inext));
        }
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(index_in_bounds(&f, &r, p, i, 16), "i ∈ [0, 15] at the gep");
        assert!(!index_in_bounds(&f, &r, p, i, 15), "15 is reachable");
    }

    #[test]
    fn unguarded_index_is_not_proven() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let buf = b.alloca_n(Ty::I64, 8);
        let n = b.func().arg(0);
        let p = b.gep(buf, n);
        let zero = b.const_i64(0);
        b.store(zero, p);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(!index_in_bounds(&f, &r, p, n, 8));
    }

    #[test]
    fn guarded_index_is_proven() {
        // if (0 <= n && n < 8) buf[n] = 0 — encoded as two branches.
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let c1ok = b.new_block("c1ok");
        let okbb = b.new_block("ok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 8);
        let n = b.func().arg(0);
        let zero = b.const_i64(0);
        let eight = b.const_i64(8);
        let c1 = b.icmp(CmpPred::Sge, n, zero);
        b.br(c1, c1ok, bad);
        b.switch_to(c1ok);
        let c2 = b.icmp(CmpPred::Slt, n, eight);
        b.br(c2, okbb, bad);
        b.switch_to(okbb);
        let p = b.gep(buf, n);
        b.store(zero, p);
        b.ret(None);
        b.switch_to(bad);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(index_in_bounds(&f, &r, p, n, 8));
        assert!(!index_in_bounds(&f, &r, p, n, 4));
    }

    /// The mixed-signedness regression: one `n ult 8` guard proves *both*
    /// bounds, because a negative `n` reinterprets as a huge unsigned
    /// value and takes the other edge.
    #[test]
    fn single_ult_guard_proves_both_bounds() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let okbb = b.new_block("ok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 8);
        let n = b.func().arg(0);
        let zero = b.const_i64(0);
        let eight = b.const_i64(8);
        let c = b.icmp(CmpPred::Ult, n, eight);
        b.br(c, okbb, bad);
        b.switch_to(okbb);
        let p = b.gep(buf, n);
        b.store(zero, p);
        b.ret(None);
        b.switch_to(bad);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(index_in_bounds(&f, &r, p, n, 8), "ult alone pins [0, 7]");
        assert!(!index_in_bounds(&f, &r, p, n, 7), "7 is reachable");
    }

    /// The false edge of `n ult len` must stay unrefined: it means
    /// `n ≥ len ∨ n < 0`, which bounds nothing.
    #[test]
    fn ult_false_edge_refines_nothing() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let okbb = b.new_block("ok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 8);
        let n = b.func().arg(0);
        let zero = b.const_i64(0);
        let eight = b.const_i64(8);
        let c = b.icmp(CmpPred::Ult, n, eight);
        b.br(c, okbb, bad);
        b.switch_to(okbb);
        b.ret(None);
        b.switch_to(bad);
        let p = b.gep(buf, n);
        b.store(zero, p);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(
            !index_in_bounds(&f, &r, p, n, 1 << 40),
            "n may be negative on the uge edge"
        );
    }

    /// `n ult m` with `m` of unknown sign refines nothing: a negative `m`
    /// is a huge unsigned bound.
    #[test]
    fn ult_against_possibly_negative_bound_refines_nothing() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64], Ty::Void);
        let okbb = b.new_block("ok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 8);
        let n = b.func().arg(0);
        let m = b.func().arg(1);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Ult, n, m);
        b.br(c, okbb, bad);
        b.switch_to(okbb);
        let p = b.gep(buf, n);
        b.store(zero, p);
        b.ret(None);
        b.switch_to(bad);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(!index_in_bounds(&f, &r, p, n, 8));
    }

    /// Builds `if (i >= 0) { if (i < len) { if (len <= 8) { buf8[i] } } }`
    /// — the bound `len` only becomes constant *after* the `i < len`
    /// guard, so plain intervals cannot prove the access; the relational
    /// fact `i ≤ len − 1` substituted at the gep can.
    #[test]
    fn relational_bound_resolves_late_constant_len() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64], Ty::Void);
        let c1ok = b.new_block("c1ok");
        let c2ok = b.new_block("c2ok");
        let okbb = b.new_block("ok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 8);
        let i = b.func().arg(0);
        let len = b.func().arg(1);
        let zero = b.const_i64(0);
        let eight = b.const_i64(8);
        let c1 = b.icmp(CmpPred::Sge, i, zero);
        b.br(c1, c1ok, bad);
        b.switch_to(c1ok);
        let c2 = b.icmp(CmpPred::Slt, i, len);
        b.br(c2, c2ok, bad);
        b.switch_to(c2ok);
        let c3 = b.icmp(CmpPred::Sle, len, eight);
        b.br(c3, okbb, bad);
        b.switch_to(okbb);
        let p = b.gep(buf, i);
        b.store(zero, p);
        b.ret(None);
        b.switch_to(bad);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(index_in_bounds(&f, &r, p, i, 8), "i ≤ len − 1 ≤ 7");
        assert!(!index_in_bounds(&f, &r, p, i, 7));
    }

    /// Relational facts survive a phi join when every incoming arm
    /// carries one: j = phi(i, i + 1) keeps j ≤ len (from i ≤ len − 1).
    #[test]
    fn relational_bounds_join_through_phi() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64, Ty::I64], Ty::Void);
        let guarded = b.new_block("guarded");
        let tbb = b.new_block("t");
        let ebb = b.new_block("e");
        let join = b.new_block("join");
        let lenok = b.new_block("lenok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 9);
        let i = b.func().arg(0);
        let len = b.func().arg(1);
        let sel = b.func().arg(2);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let eight = b.const_i64(8);
        let c0 = b.icmp(CmpPred::Ult, i, len);
        b.br(c0, guarded, bad);
        b.switch_to(guarded);
        let cs = b.icmp(CmpPred::Sgt, sel, zero);
        b.br(cs, tbb, ebb);
        b.switch_to(tbb);
        b.jmp(join);
        b.switch_to(ebb);
        let i1 = b.add(i, one);
        b.jmp(join);
        b.switch_to(join);
        let j = b.phi(vec![(tbb, i), (ebb, i1)]);
        let cl = b.icmp(CmpPred::Sle, len, eight);
        b.br(cl, lenok, bad);
        b.switch_to(lenok);
        let p = b.gep(buf, j);
        b.store(zero, p);
        b.ret(None);
        b.switch_to(bad);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        // len's sign is unknown at the ult guard, so no relation may be
        // recorded (a negative len is a huge unsigned bound): unproven.
        assert!(!index_in_bounds(&f, &r, p, j, 9));
    }

    /// Same shape as above but with the bound's sign established first
    /// (`len sge 0`), so `i ult len` both refines and relates; the phi
    /// join then keeps j ≤ len ≤ 8 and j ≥ 0.
    #[test]
    fn relational_bounds_join_through_phi_with_known_sign() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64, Ty::I64], Ty::Void);
        let sgn = b.new_block("sgn");
        let guarded = b.new_block("guarded");
        let tbb = b.new_block("t");
        let ebb = b.new_block("e");
        let join = b.new_block("join");
        let lenok = b.new_block("lenok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 9);
        let i = b.func().arg(0);
        let len = b.func().arg(1);
        let sel = b.func().arg(2);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let eight = b.const_i64(8);
        let csgn = b.icmp(CmpPred::Sge, len, zero);
        b.br(csgn, sgn, bad);
        b.switch_to(sgn);
        let c0 = b.icmp(CmpPred::Ult, i, len);
        b.br(c0, guarded, bad);
        b.switch_to(guarded);
        let cs = b.icmp(CmpPred::Sgt, sel, zero);
        b.br(cs, tbb, ebb);
        b.switch_to(tbb);
        b.jmp(join);
        b.switch_to(ebb);
        let i1 = b.add(i, one);
        b.jmp(join);
        b.switch_to(join);
        let j = b.phi(vec![(tbb, i), (ebb, i1)]);
        let cl = b.icmp(CmpPred::Sle, len, eight);
        b.br(cl, lenok, bad);
        b.switch_to(lenok);
        let p = b.gep(buf, j);
        b.store(zero, p);
        b.ret(None);
        b.switch_to(bad);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(index_in_bounds(&f, &r, p, j, 9), "j ≤ len ≤ 8, j ≥ 0");
        assert!(!index_in_bounds(&f, &r, p, j, 8), "j = len = 8 reachable");
    }

    /// Entry seeds stand in for a calling context: pinning the `len`
    /// parameter to the callsite's constant makes the guarded store
    /// provable, exactly the per-context replay the pruner performs.
    #[test]
    fn seeded_parameter_ranges_prove_guarded_store() {
        let mut b = FunctionBuilder::new("f", vec![Ty::ptr(Ty::I64), Ty::I64, Ty::I64], Ty::Void);
        let okbb = b.new_block("ok");
        let out = b.new_block("out");
        let p = b.func().arg(0);
        let len = b.func().arg(1);
        let i = b.func().arg(2);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Ult, i, len);
        b.br(c, okbb, out);
        b.switch_to(okbb);
        let q = b.gep(p, i);
        b.store(zero, q);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
        let f = b.finish();

        // Unseeded: len's sign is unknown, nothing proves.
        let r0 = value_ranges(&f);
        assert!(!index_in_bounds(&f, &r0, q, i, 8));

        // Seeded with len = 8 (a callsite passing a constant): proven.
        let r8 = value_ranges_seeded(&f, &[(len, Interval::exact(8))]);
        assert!(r8.converged());
        assert!(index_in_bounds(&f, &r8, q, i, 8));
        assert!(!index_in_bounds(&f, &r8, q, i, 7));

        // Seeded with a larger capacity than the proof needs: unproven.
        let r16 = value_ranges_seeded(&f, &[(len, Interval::exact(16))]);
        assert!(!index_in_bounds(&f, &r16, q, i, 8));
        assert!(index_in_bounds(&f, &r16, q, i, 16));
    }

    #[test]
    fn unreachable_blocks_report_full_ranges() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let dead = b.new_block("dead");
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(dead);
        let two = b.const_i64(2);
        let s = b.add(two, two);
        b.ret(Some(s));
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(!r.block_reachable(f.block_of(s).unwrap()));
        assert!(r.range_before(&f, s, two).is_full() || !r.converged());
    }
}
