//! Interval (value-range) analysis: a forward dataflow on the shared
//! worklist solver that bounds every integer SSA value with a closed
//! interval `[lo, hi]`, precise enough to prove variable-index memory
//! accesses in-bounds (`0 ≤ index < count` along **all** paths).
//!
//! The obligation pruner ([`crate::reach`]) consumes these proofs: a store
//! through a `gep` whose index is proven in-bounds for every pointee
//! cannot overflow into a neighboring object, so it is not an
//! overflow-capable write and the objects adjacent to its targets need no
//! protection on its account.
//!
//! # Lattice
//!
//! A fact is `None` (unreachable — the optimistic ⊤) or a map from
//! [`ValueId`] to [`Interval`]; an absent key means the full range (the
//! per-variable ⊥). The join widens with a *threshold set* harvested from
//! the function's integer constants (each `c` contributes `c−1`, `c`,
//! `c+1`, plus 0 and the i64 extremes): unequal bounds snap outward to the
//! nearest threshold, so every per-variable chain is finite and the solver
//! converges without giving up the loop-bound constants that in-bounds
//! proofs actually need (`i < N` refinement keeps `N−1`).
//!
//! Branch refinement and phi selection both live in the solver's
//! [`DataflowAnalysis::edge`] hook: crossing `pred → target` first clamps
//! the ranges of the compared operands according to the branch condition's
//! outcome on that edge, then binds each phi in `target` to its
//! edge-specific operand range.

use crate::dataflow::{solve, DataflowAnalysis, Direction, SolveResult};
use pythia_ir::{BinOp, BlockId, CmpPred, Function, Inst, ValueId, ValueKind};
use std::collections::{BTreeMap, BTreeSet};

/// A closed interval `[lo, hi]` over `i64`. Empty intervals are never
/// constructed (refinement that would empty a range leaves it untouched —
/// the edge is then infeasible but still modeled conservatively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range (the per-variable ⊥).
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The singleton interval `[c, c]`.
    pub fn exact(c: i64) -> Self {
        Interval { lo: c, hi: c }
    }

    /// Whether this is the full (uninformative) range.
    pub fn is_full(&self) -> bool {
        *self == Self::FULL
    }

    /// Whether every value in the interval lies in `[0, count)`.
    pub fn within_bounds(&self, count: u64) -> bool {
        self.lo >= 0 && u64::try_from(self.hi).map(|h| h < count).unwrap_or(false)
    }

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    fn sub(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
        }
    }

    fn mul(self, other: Interval) -> Interval {
        let candidates = [
            self.lo.saturating_mul(other.lo),
            self.lo.saturating_mul(other.hi),
            self.hi.saturating_mul(other.lo),
            self.hi.saturating_mul(other.hi),
        ];
        Interval {
            lo: *candidates.iter().min().unwrap(),
            hi: *candidates.iter().max().unwrap(),
        }
    }
}

/// `None` = block not (yet) reachable; absent key = full range.
type Fact = Option<BTreeMap<ValueId, Interval>>;

struct RangeAnalysis {
    /// Sorted widening thresholds (always contains `i64::MIN`, 0,
    /// `i64::MAX`).
    thresholds: Vec<i64>,
}

impl RangeAnalysis {
    fn for_function(f: &Function) -> Self {
        let mut ts: BTreeSet<i64> = BTreeSet::new();
        ts.insert(i64::MIN);
        ts.insert(0);
        ts.insert(i64::MAX);
        for v in f.value_ids() {
            if let ValueKind::ConstInt(c) = f.value(v).kind {
                ts.insert(c.saturating_sub(1));
                ts.insert(c);
                ts.insert(c.saturating_add(1));
            }
        }
        RangeAnalysis {
            thresholds: ts.into_iter().collect(),
        }
    }

    /// Widen `v` down to the nearest threshold `≤ v`.
    fn widen_down(&self, v: i64) -> i64 {
        match self.thresholds.binary_search(&v) {
            Ok(_) => v,
            Err(0) => i64::MIN,
            Err(i) => self.thresholds[i - 1],
        }
    }

    /// Widen `v` up to the nearest threshold `≥ v`.
    fn widen_up(&self, v: i64) -> i64 {
        match self.thresholds.binary_search(&v) {
            Ok(_) => v,
            Err(i) if i < self.thresholds.len() => self.thresholds[i],
            Err(_) => i64::MAX,
        }
    }

    /// Widened join: equal bounds are kept exactly; unequal bounds snap
    /// outward to the nearest threshold. Commutative, and each bound can
    /// only move a threshold-count number of times — the termination
    /// argument for loops.
    fn join(&self, a: Interval, b: Interval) -> Interval {
        let lo = if a.lo == b.lo {
            a.lo
        } else {
            self.widen_down(a.lo.min(b.lo))
        };
        let hi = if a.hi == b.hi {
            a.hi
        } else {
            self.widen_up(a.hi.max(b.hi))
        };
        Interval { lo, hi }
    }

    fn range_of(f: &Function, fact: &BTreeMap<ValueId, Interval>, v: ValueId) -> Interval {
        match f.value(v).kind {
            ValueKind::ConstInt(c) => Interval::exact(c),
            _ => fact.get(&v).copied().unwrap_or(Interval::FULL),
        }
    }

    /// Transfer one instruction. Only integer-valued results are tracked;
    /// untracked instructions map to the absent (full) range.
    fn transfer_inst(&self, f: &Function, fact: &mut BTreeMap<ValueId, Interval>, iv: ValueId) {
        let Some(inst) = f.inst(iv) else { return };
        let range = match inst {
            Inst::Bin { op, lhs, rhs } => {
                let l = Self::range_of(f, fact, *lhs);
                let r = Self::range_of(f, fact, *rhs);
                match op {
                    BinOp::Add => Some(l.add(r)),
                    BinOp::Sub => Some(l.sub(r)),
                    BinOp::Mul => Some(l.mul(r)),
                    _ => None,
                }
            }
            Inst::Icmp { .. } => Some(Interval { lo: 0, hi: 1 }),
            Inst::Select {
                on_true, on_false, ..
            } => {
                let t = Self::range_of(f, fact, *on_true);
                let e = Self::range_of(f, fact, *on_false);
                // Plain (unwidened) hull: select has no back edge.
                Some(Interval {
                    lo: t.lo.min(e.lo),
                    hi: t.hi.max(e.hi),
                })
            }
            // Phi ranges are bound on the incoming edges (`edge` hook);
            // the block's own transfer must not clobber them.
            Inst::Phi { .. } => return,
            // Loads, calls, casts and pointers stay untracked (full).
            _ => None,
        };
        match range {
            Some(r) if !r.is_full() && f.value(iv).ty.is_int() => {
                fact.insert(iv, r);
            }
            _ => {
                fact.remove(&iv);
            }
        }
    }

    /// Clamp `(lhs, rhs)` ranges under the assumption `lhs pred rhs` holds.
    /// Returns `None` when the predicate supports no interval refinement.
    fn refine(pred: CmpPred, l: Interval, r: Interval) -> Option<(Interval, Interval)> {
        let clamp = |iv: Interval, lo: i64, hi: i64| -> Interval {
            let nl = iv.lo.max(lo);
            let nh = iv.hi.min(hi);
            if nl <= nh {
                Interval { lo: nl, hi: nh }
            } else {
                // Infeasible edge; keep the unrefined range (sound).
                iv
            }
        };
        // Unsigned comparisons refine like signed ones only when both
        // sides are already known non-negative.
        let both_nonneg = l.lo >= 0 && r.lo >= 0;
        let signedish = |p: CmpPred| match p {
            CmpPred::Ult if both_nonneg => Some(CmpPred::Slt),
            CmpPred::Ule if both_nonneg => Some(CmpPred::Sle),
            CmpPred::Ugt if both_nonneg => Some(CmpPred::Sgt),
            CmpPred::Uge if both_nonneg => Some(CmpPred::Sge),
            CmpPred::Ult | CmpPred::Ule | CmpPred::Ugt | CmpPred::Uge => None,
            p => Some(p),
        };
        match signedish(pred)? {
            CmpPred::Eq => {
                let lo = l.lo.max(r.lo);
                let hi = l.hi.min(r.hi);
                if lo <= hi {
                    Some((Interval { lo, hi }, Interval { lo, hi }))
                } else {
                    None
                }
            }
            CmpPred::Ne => None,
            CmpPred::Slt => Some((
                clamp(l, i64::MIN, r.hi.saturating_sub(1)),
                clamp(r, l.lo.saturating_add(1), i64::MAX),
            )),
            CmpPred::Sle => Some((clamp(l, i64::MIN, r.hi), clamp(r, l.lo, i64::MAX))),
            CmpPred::Sgt => Some((
                clamp(l, r.lo.saturating_add(1), i64::MAX),
                clamp(r, i64::MIN, l.hi.saturating_sub(1)),
            )),
            CmpPred::Sge => Some((clamp(l, r.lo, i64::MAX), clamp(r, i64::MIN, l.hi))),
            _ => None,
        }
    }

    fn negate(pred: CmpPred) -> CmpPred {
        match pred {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Slt => CmpPred::Sge,
            CmpPred::Sle => CmpPred::Sgt,
            CmpPred::Sgt => CmpPred::Sle,
            CmpPred::Sge => CmpPred::Slt,
            CmpPred::Ult => CmpPred::Uge,
            CmpPred::Ule => CmpPred::Ugt,
            CmpPred::Ugt => CmpPred::Ule,
            CmpPred::Uge => CmpPred::Ult,
        }
    }
}

impl DataflowAnalysis for RangeAnalysis {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _f: &Function, _bb: BlockId) -> Fact {
        Some(BTreeMap::new())
    }

    fn top(&self, _f: &Function) -> Fact {
        None
    }

    fn meet(&self, a: &Fact, b: &Fact) -> Fact {
        match (a, b) {
            (None, x) | (x, None) => x.clone(),
            (Some(a), Some(b)) => {
                // Pointwise widened join; keys absent on either side are
                // full there, so the join is full (drop the key).
                let mut out = BTreeMap::new();
                for (v, ia) in a {
                    if let Some(ib) = b.get(v) {
                        let j = self.join(*ia, *ib);
                        if !j.is_full() {
                            out.insert(*v, j);
                        }
                    }
                }
                Some(out)
            }
        }
    }

    fn transfer(&self, f: &Function, bb: BlockId, fact: &Fact) -> Fact {
        let mut out = fact.clone()?;
        for &iv in &f.block(bb).insts {
            self.transfer_inst(f, &mut out, iv);
        }
        Some(out)
    }

    fn edge(&self, f: &Function, from: BlockId, to: BlockId, fact: &Fact) -> Fact {
        let Some(map) = fact else { return None };
        let mut out = map.clone();

        // Branch-condition refinement: the edge taken tells us the
        // condition's outcome (unless both targets coincide).
        if let Some(Inst::Br {
            cond,
            then_bb,
            else_bb,
        }) = f.terminator(from)
        {
            if then_bb != else_bb {
                if let Some(Inst::Icmp { pred, lhs, rhs }) = f.inst(*cond) {
                    let effective = if to == *then_bb {
                        *pred
                    } else {
                        Self::negate(*pred)
                    };
                    let l = Self::range_of(f, &out, *lhs);
                    let r = Self::range_of(f, &out, *rhs);
                    if let Some((nl, nr)) = Self::refine(effective, l, r) {
                        for (v, iv) in [(*lhs, nl), (*rhs, nr)] {
                            if !matches!(f.value(v).kind, ValueKind::ConstInt(_)) && !iv.is_full() {
                                out.insert(v, iv);
                            }
                        }
                    }
                }
            }
        }

        // Phi selection: in `to`, each phi takes exactly the operand
        // flowing along this edge; bind its (refined) range.
        let mut phi_bindings: Vec<(ValueId, Interval)> = Vec::new();
        for &iv in &f.block(to).insts {
            if let Some(Inst::Phi { incomings }) = f.inst(iv) {
                if !f.value(iv).ty.is_int() {
                    continue;
                }
                for (pb, pv) in incomings {
                    if *pb == from {
                        phi_bindings.push((iv, Self::range_of(f, &out, *pv)));
                    }
                }
            }
        }
        for (v, r) in phi_bindings {
            if r.is_full() {
                out.remove(&v);
            } else {
                out.insert(v, r);
            }
        }
        Some(out)
    }
}

/// Per-function value-range results, queryable at any program point.
pub struct ValueRanges {
    analysis: RangeAnalysis,
    result: SolveResult<Fact>,
}

/// Compute value ranges for one function.
pub fn value_ranges(f: &Function) -> ValueRanges {
    let analysis = RangeAnalysis::for_function(f);
    let result = solve(f, &analysis);
    ValueRanges { analysis, result }
}

impl ValueRanges {
    /// Whether the fixpoint converged (it can only fail to on the solver's
    /// fuel fuse; callers must then treat every range as full).
    pub fn converged(&self) -> bool {
        self.result.converged
    }

    /// The interval of `v` at the program point **just before** `at`
    /// executes (replaying the containing block from its input fact).
    /// Returns the full range when the block is statically unreachable or
    /// the fixpoint did not converge — both are sound for bound proofs.
    pub fn range_before(&self, f: &Function, at: ValueId, v: ValueId) -> Interval {
        if !self.result.converged {
            return Interval::FULL;
        }
        let Some(bb) = f.block_of(at) else {
            return Interval::FULL;
        };
        let Some(input) = self.result.input(bb) else {
            // Unreachable code: any claim holds; FULL keeps callers honest.
            return Interval::FULL;
        };
        let mut fact = input.clone();
        for &iv in &f.block(bb).insts {
            if iv == at {
                break;
            }
            self.analysis.transfer_inst(f, &mut fact, iv);
        }
        RangeAnalysis::range_of(f, &fact, v)
    }

    /// Whether block `bb` is reachable under the analysis.
    pub fn block_reachable(&self, bb: BlockId) -> bool {
        self.result.input(bb).is_some() || !self.result.converged
    }
}

/// Proof query used by the pruner: is the `gep` at `(f, gep_inst)` with
/// the given `index` value provably in `[0, count)` at that point?
pub fn index_in_bounds(
    f: &Function,
    ranges: &ValueRanges,
    gep_inst: ValueId,
    index: ValueId,
    count: u64,
) -> bool {
    // Constant indexes need no dataflow.
    if let ValueKind::ConstInt(c) = f.value(index).kind {
        return c >= 0 && (c as u64) < count;
    }
    ranges
        .range_before(f, gep_inst, index)
        .within_bounds(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Ty};

    #[test]
    fn constants_and_arithmetic_have_exact_ranges() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let x = b.const_i64(5);
        let y = b.const_i64(7);
        let s = b.add(x, y);
        let d = b.sub(s, x);
        b.ret(Some(d));
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert_eq!(r.range_before(&f, d, s), Interval::exact(12));
        // Before `ret`, d = s - x = 7.
        let ret = *f.block(f.entry()).insts.last().unwrap();
        assert_eq!(r.range_before(&f, ret, d), Interval::exact(7));
    }

    #[test]
    fn branch_refinement_clamps_the_taken_edge() {
        // if (n < 8) { use n } else { use n }
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let n = b.func().arg(0);
        let eight = b.const_i64(8);
        let c = b.icmp(CmpPred::Slt, n, eight);
        b.br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        let tv = b.add(n, one);
        b.ret(Some(tv));
        b.switch_to(e);
        let ev = b.add(n, one);
        b.ret(Some(ev));
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        // In the then-arm, n ≤ 7; in the else-arm, n ≥ 8.
        assert_eq!(r.range_before(&f, tv, n).hi, 7);
        assert!(r.range_before(&f, tv, n).lo == i64::MIN);
        assert_eq!(r.range_before(&f, ev, n).lo, 8);
    }

    #[test]
    fn counted_loop_index_is_proven_in_bounds() {
        // i = 0; while (i < 16) { access buf[i]; i = i + 1; }
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let head = b.new_block("head");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let buf = b.alloca_n(Ty::I64, 16);
        let zero = b.const_i64(0);
        let sixteen = b.const_i64(16);
        let one = b.const_i64(1);
        b.jmp(head);
        b.switch_to(head);
        let entry = b.func().entry();
        let i = b.phi(vec![(entry, zero)]);
        let c = b.icmp(CmpPred::Slt, i, sixteen);
        b.br(c, body, exit);
        b.switch_to(body);
        let p = b.gep(buf, i);
        b.store(zero, p);
        let inext = b.add(i, one);
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        // Wire the back-edge incoming: body -> inext.
        let body_bb = f.block_of(p).unwrap();
        if let Some(pythia_ir::Inst::Phi { incomings }) = f.inst_mut(i) {
            incomings.push((body_bb, inext));
        }
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(index_in_bounds(&f, &r, p, i, 16), "i ∈ [0, 15] at the gep");
        assert!(!index_in_bounds(&f, &r, p, i, 15), "15 is reachable");
    }

    #[test]
    fn unguarded_index_is_not_proven() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let buf = b.alloca_n(Ty::I64, 8);
        let n = b.func().arg(0);
        let p = b.gep(buf, n);
        let zero = b.const_i64(0);
        b.store(zero, p);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(!index_in_bounds(&f, &r, p, n, 8));
    }

    #[test]
    fn guarded_index_is_proven() {
        // if (0 <= n && n < 8) buf[n] = 0 — encoded as two branches.
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let c1ok = b.new_block("c1ok");
        let okbb = b.new_block("ok");
        let bad = b.new_block("bad");
        let buf = b.alloca_n(Ty::I64, 8);
        let n = b.func().arg(0);
        let zero = b.const_i64(0);
        let eight = b.const_i64(8);
        let c1 = b.icmp(CmpPred::Sge, n, zero);
        b.br(c1, c1ok, bad);
        b.switch_to(c1ok);
        let c2 = b.icmp(CmpPred::Slt, n, eight);
        b.br(c2, okbb, bad);
        b.switch_to(okbb);
        let p = b.gep(buf, n);
        b.store(zero, p);
        b.ret(None);
        b.switch_to(bad);
        b.ret(None);
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(r.converged());
        assert!(index_in_bounds(&f, &r, p, n, 8));
        assert!(!index_in_bounds(&f, &r, p, n, 4));
    }

    #[test]
    fn unreachable_blocks_report_full_ranges() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let dead = b.new_block("dead");
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(dead);
        let two = b.const_i64(2);
        let s = b.add(two, two);
        b.ret(Some(s));
        let f = b.finish();
        let r = value_ranges(&f);
        assert!(!r.block_reachable(f.block_of(s).unwrap()));
        assert!(r.range_before(&f, s, two).is_full() || !r.converged());
    }
}
