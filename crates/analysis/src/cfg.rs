//! Control-flow graph utilities: orderings, dominators, post-dominators,
//! and loop-ish structure helpers used by the cost model.

use pythia_ir::{BlockId, Function};

/// Reverse postorder of the blocks reachable from the entry.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.num_blocks();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    visited[f.entry().0 as usize] = true;
    while !stack.is_empty() {
        let (bb, idx) = {
            let top = stack.last_mut().expect("stack non-empty");
            let pair = (top.0, top.1);
            top.1 += 1;
            pair
        };
        let succs = f.successors(bb);
        if idx < succs.len() {
            let s = succs[idx];
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(bb);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy).
///
/// `idom[entry] == entry`; unreachable blocks have `idom == None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `f`.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let n = f.num_blocks();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, bb) in rpo.iter().enumerate() {
            rpo_index[bb.0 as usize] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry().0 as usize] = Some(f.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[bb.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb.0 as usize] != Some(ni) {
                        idom[bb.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// Immediate dominator of `bb` (`bb` itself for the entry; `None` for
    /// unreachable blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        self.idom[bb.0 as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.idom[bb.0 as usize].is_some()
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed pred must have idom");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed pred must have idom");
        }
    }
    a
}

/// Back edges `(from, to)` where `to` dominates `from` — natural-loop
/// indicators.
pub fn back_edges(f: &Function) -> Vec<(BlockId, BlockId)> {
    let doms = Dominators::compute(f);
    let mut out = Vec::new();
    for bb in f.block_ids() {
        if !doms.is_reachable(bb) {
            continue;
        }
        for s in f.successors(bb) {
            if doms.dominates(s, bb) {
                out.push((bb, s));
            }
        }
    }
    out
}

/// Static loop-nesting depth per block, estimated from natural loops.
///
/// Blocks belonging to `k` nested natural loops get depth `k` — the static
/// counterpart of the "PA instructions inside loop nests execute
/// repeatedly" effect the paper reports (§6.1).
pub fn loop_depths(f: &Function) -> Vec<u32> {
    let n = f.num_blocks();
    let mut depth = vec![0u32; n];
    let preds = f.predecessors();
    for (latch, header) in back_edges(f) {
        // Collect the natural loop body of (latch -> header).
        let mut body = vec![false; n];
        body[header.0 as usize] = true;
        let mut stack = vec![latch];
        while let Some(bb) = stack.pop() {
            if body[bb.0 as usize] {
                continue;
            }
            body[bb.0 as usize] = true;
            for &p in &preds[bb.0 as usize] {
                stack.push(p);
            }
        }
        for (i, in_body) in body.iter().enumerate() {
            if *in_body {
                depth[i] += 1;
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Ty};

    /// entry -> (a, b); a -> join; b -> join; join -> ret
    fn diamond() -> pythia_ir::Function {
        let mut b = FunctionBuilder::new("d", vec![Ty::I64], Ty::I64);
        let a = b.new_block("a");
        let c = b.new_block("c");
        let j = b.new_block("j");
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let cond = b.icmp(CmpPred::Sgt, x, zero);
        b.br(cond, a, c);
        b.switch_to(a);
        b.jmp(j);
        b.switch_to(c);
        b.jmp(j);
        b.switch_to(j);
        b.ret(Some(x));
        b.finish()
    }

    /// entry -> loop; loop -> loop | exit
    fn simple_loop() -> pythia_ir::Function {
        let mut b = FunctionBuilder::new("l", vec![Ty::I64], Ty::I64);
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.jmp(body);
        b.switch_to(body);
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let cond = b.icmp(CmpPred::Sgt, x, zero);
        b.br(cond, body, exit);
        b.switch_to(exit);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let d = Dominators::compute(&f);
        let e = f.entry();
        assert_eq!(d.idom(BlockId(1)), Some(e));
        assert_eq!(d.idom(BlockId(2)), Some(e));
        // join's idom is the entry, not either arm.
        assert_eq!(d.idom(BlockId(3)), Some(e));
        assert!(d.dominates(e, BlockId(3)));
        assert!(!d.dominates(BlockId(1), BlockId(3)));
        assert!(d.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_back_edge_detected() {
        let f = simple_loop();
        let be = back_edges(&f);
        assert_eq!(be, vec![(BlockId(1), BlockId(1))]);
        let depths = loop_depths(&f);
        assert_eq!(depths[1], 1);
        assert_eq!(depths[0], 0);
        assert_eq!(depths[2], 0);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut b = FunctionBuilder::new("u", vec![], Ty::Void);
        let dead = b.new_block("dead");
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let d = Dominators::compute(&f);
        assert!(!d.is_reachable(dead));
        assert!(d.is_reachable(f.entry()));
    }
}

/// Post-dominator tree, computed on the reverse CFG with a virtual exit
/// joining every `ret`/`unreachable` block.
///
/// Used for control-dependence (below), which in turn lets branch
/// decomposition include the *conditions governing* a definition, not just
/// its data inputs — full program slicing in the Ottenstein sense.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// ipdom over node indices 0..n (real blocks) and n (the virtual
    /// exit). `usize::MAX` marks "not computed" (cannot reach an exit).
    ipdom: Vec<usize>,
    n: usize,
}

impl PostDominators {
    /// Compute post-dominators for `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.num_blocks();
        let virt = n; // the virtual exit node
        let succs: Vec<Vec<BlockId>> = f.block_ids().map(|b| f.successors(b)).collect();
        let preds = f.predecessors();
        let is_exit: Vec<bool> = (0..n).map(|b| succs[b].is_empty()).collect();

        // Postorder of the reverse CFG from the virtual exit (whose
        // reverse-successors are the exit blocks).
        let mut order: Vec<usize> = Vec::with_capacity(n + 1);
        let mut visited = vec![false; n + 1];
        // Iterative DFS over reverse edges.
        let rev_succs = |node: usize| -> Vec<usize> {
            if node == virt {
                (0..n).filter(|&b| is_exit[b]).collect()
            } else {
                preds[node].iter().map(|b| b.0 as usize).collect()
            }
        };
        let mut stack: Vec<(usize, usize)> = vec![(virt, 0)];
        visited[virt] = true;
        while !stack.is_empty() {
            let (node, idx) = {
                let top = stack.last_mut().expect("non-empty");
                let pair = (top.0, top.1);
                top.1 += 1;
                pair
            };
            let rs = rev_succs(node);
            if idx < rs.len() {
                let s = rs[idx];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse(); // reverse postorder; order[0] == virt
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, node) in order.iter().enumerate() {
            rpo_index[*node] = i;
        }

        let mut ipdom = vec![usize::MAX; n + 1];
        ipdom[virt] = virt;
        let intersect = |ipdom: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = ipdom[a];
                }
                while rpo_index[b] > rpo_index[a] {
                    b = ipdom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in order.iter().skip(1) {
                // Reverse-CFG predecessors of `node` = its real successors
                // (plus the virtual exit for exit blocks).
                let rpreds: Vec<usize> = if node == virt {
                    vec![]
                } else if is_exit[node] {
                    vec![virt]
                } else {
                    succs[node].iter().map(|b| b.0 as usize).collect()
                };
                let mut new = usize::MAX;
                for p in rpreds {
                    if ipdom[p] == usize::MAX {
                        continue;
                    }
                    new = if new == usize::MAX {
                        p
                    } else {
                        intersect(&ipdom, p, new)
                    };
                }
                if new != usize::MAX && ipdom[node] != new {
                    ipdom[node] = new;
                    changed = true;
                }
            }
        }
        PostDominators { ipdom, n }
    }

    /// Immediate post-dominator of `b`: `None` when it is the virtual exit
    /// (i.e. `b` exits directly) or when `b` cannot reach an exit.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.ipdom[b.0 as usize];
        if d == usize::MAX || d == self.n {
            None
        } else {
            Some(BlockId(d as u32))
        }
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let target = a.0 as usize;
        let mut cur = b.0 as usize;
        loop {
            if cur == target {
                return true;
            }
            let d = self.ipdom[cur];
            if d == usize::MAX || d == self.n || d == cur {
                return false;
            }
            cur = d;
        }
    }
}

/// Control-dependence: block `b` is control-dependent on branch block `a`
/// when `a` has one successor through which `b` is always reached (i.e. it
/// post-dominates that successor) and another through which it may be
/// avoided (it does not post-dominate `a`).
///
/// Returns, for each block, the set of blocks it is control-dependent on.
pub fn control_dependence(f: &Function) -> Vec<Vec<BlockId>> {
    let pd = PostDominators::compute(f);
    let mut deps: Vec<Vec<BlockId>> = vec![Vec::new(); f.num_blocks()];
    for a in f.block_ids() {
        let succs = f.successors(a);
        if succs.len() < 2 {
            continue;
        }
        // Ferrante–Ottenstein–Warren: for each edge a -> s, every block on
        // the post-dominator-tree path from s up to (but excluding)
        // ipdom(a) is control-dependent on a.
        let stop = pd.ipdom(a);
        for &s in &succs {
            let mut cur = Some(s);
            while let Some(b) = cur {
                if Some(b) == stop {
                    break;
                }
                if !deps[b.0 as usize].contains(&a) {
                    deps[b.0 as usize].push(a);
                }
                cur = match pd.ipdom(b) {
                    Some(d) if d != b => Some(d),
                    _ => None, // reached an exit (virtual root)
                };
            }
        }
    }
    deps
}

#[cfg(test)]
mod postdom_tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Ty};

    /// entry -> (a, b); a -> join; b -> join; join -> ret
    fn diamond() -> pythia_ir::Function {
        let mut b = FunctionBuilder::new("d", vec![Ty::I64], Ty::I64);
        let a = b.new_block("a");
        let c = b.new_block("c");
        let j = b.new_block("j");
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let cond = b.icmp(CmpPred::Sgt, x, zero);
        b.br(cond, a, c);
        b.switch_to(a);
        b.jmp(j);
        b.switch_to(c);
        b.jmp(j);
        b.switch_to(j);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn join_postdominates_everything_in_the_diamond() {
        let f = diamond();
        let pd = PostDominators::compute(&f);
        let j = BlockId(3);
        assert!(pd.post_dominates(j, f.entry()));
        assert!(pd.post_dominates(j, BlockId(1)));
        assert!(pd.post_dominates(j, BlockId(2)));
        assert!(pd.post_dominates(j, j));
        // Neither arm post-dominates the entry.
        assert!(!pd.post_dominates(BlockId(1), f.entry()));
        assert_eq!(pd.ipdom(f.entry()), Some(j));
    }

    #[test]
    fn diamond_arms_control_depend_on_the_branch() {
        let f = diamond();
        let cd = control_dependence(&f);
        assert_eq!(cd[1], vec![f.entry()], "then-arm depends on the branch");
        assert_eq!(cd[2], vec![f.entry()], "else-arm depends on the branch");
        assert!(cd[3].is_empty(), "the join is control-independent");
        assert!(cd[0].is_empty(), "the entry is control-independent");
    }

    #[test]
    fn loop_body_depends_on_its_own_exit_branch() {
        // entry -> body; body -> body | exit
        let mut b = FunctionBuilder::new("l", vec![Ty::I64], Ty::I64);
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.jmp(body);
        b.switch_to(body);
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let cond = b.icmp(CmpPred::Sgt, x, zero);
        b.br(cond, body, exit);
        b.switch_to(exit);
        b.ret(Some(x));
        let f = b.finish();
        let cd = control_dependence(&f);
        assert_eq!(cd[1], vec![BlockId(1)], "loop body depends on itself");
        assert!(cd[2].is_empty(), "exit always runs");
    }

    #[test]
    fn nested_diamonds_stack_dependences() {
        // entry -> (outer_t, join); outer_t -> (inner_t, inner_j);
        // inner_t -> inner_j; inner_j -> join; join -> ret
        let mut b = FunctionBuilder::new("n", vec![Ty::I64], Ty::I64);
        let outer_t = b.new_block("outer_t");
        let inner_t = b.new_block("inner_t");
        let inner_j = b.new_block("inner_j");
        let join = b.new_block("join");
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let c1 = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c1, outer_t, join);
        b.switch_to(outer_t);
        let ten = b.const_i64(10);
        let c2 = b.icmp(CmpPred::Slt, x, ten);
        b.br(c2, inner_t, inner_j);
        b.switch_to(inner_t);
        b.jmp(inner_j);
        b.switch_to(inner_j);
        b.jmp(join);
        b.switch_to(join);
        b.ret(Some(x));
        let f = b.finish();

        let cd = control_dependence(&f);
        // inner_t depends on the inner branch (outer_t)…
        assert!(cd[inner_t.0 as usize].contains(&outer_t));
        // …and outer_t + inner_j depend on the entry branch.
        assert!(cd[outer_t.0 as usize].contains(&f.entry()));
        assert!(cd[inner_j.0 as usize].contains(&f.entry()));
        assert!(cd[join.0 as usize].is_empty());
    }

    #[test]
    fn multiple_rets_share_the_virtual_exit() {
        let mut b = FunctionBuilder::new("m", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(x));
        b.switch_to(e);
        b.ret(Some(zero));
        let f = b.finish();
        let pd = PostDominators::compute(&f);
        // Neither ret block post-dominates the entry (each can be avoided).
        assert!(!pd.post_dominates(t, f.entry()));
        assert!(!pd.post_dominates(e, f.entry()));
        let cd = control_dependence(&f);
        assert_eq!(cd[t.0 as usize], vec![f.entry()]);
        assert_eq!(cd[e.0 as usize], vec![f.entry()]);
    }
}
