//! A generic forward/backward worklist dataflow solver.
//!
//! Every fixpoint analysis in this crate (liveness, reaching stores) and
//! the protection-invariant linter built on top of it share the same
//! skeleton: facts drawn from a finite-height lattice, a monotone
//! per-block transfer function, and Kildall's worklist iteration over the
//! CFG. This module factors that skeleton out once so each client only
//! states its lattice and transfer function.
//!
//! # Lattice & termination
//!
//! A client supplies:
//!
//! - a *fact* type with equality (the lattice elements),
//! - [`DataflowAnalysis::top`], the optimistic starting fact for interior
//!   blocks,
//! - [`DataflowAnalysis::boundary`], the fact holding at the CFG boundary
//!   (function entry for forward analyses; each exiting block for
//!   backward analyses),
//! - [`DataflowAnalysis::meet`], combining facts where paths join,
//! - [`DataflowAnalysis::transfer`], pushing a fact through one block.
//!
//! Termination is the standard argument: if the fact lattice has finite
//! height (every chain of strictly descending facts is finite — true for
//! the powerset lattices used here, whose height is the number of values
//! in the function) and `transfer` is monotone with respect to the order
//! induced by `meet`, each block's fact can only move down the lattice a
//! bounded number of times, so the worklist drains. The solver
//! additionally carries a generous iteration fuse ([`SolveResult::converged`])
//! so a buggy non-monotone client degrades into a detectable
//! non-convergence instead of an infinite loop.

use pythia_ir::{BlockId, Function};
use crate::cfg::reverse_postorder;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from function entry toward the exits.
    Forward,
    /// Facts flow from the exits toward function entry.
    Backward,
}

/// A dataflow problem: lattice + transfer function over one [`Function`].
pub trait DataflowAnalysis {
    /// Lattice element. Equality is how the solver detects the fixpoint.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The fact at the CFG boundary: the entry of the entry block for
    /// forward analyses, or the exit of `bb` (a block whose terminator
    /// leaves the function) for backward analyses.
    fn boundary(&self, f: &Function, bb: BlockId) -> Self::Fact;

    /// The optimistic initial fact for interior program points.
    fn top(&self, f: &Function) -> Self::Fact;

    /// Combine two facts where control-flow paths join.
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Push `fact` through block `bb`: for forward analyses `fact` holds
    /// at the block's entry and the result at its exit; for backward
    /// analyses `fact` holds at the block's exit and the result at its
    /// entry.
    fn transfer(&self, f: &Function, bb: BlockId, fact: &Self::Fact) -> Self::Fact;

    /// Adjust a fact as it crosses the CFG edge `from -> to` (called with
    /// the flow-source block's post-transfer fact). The default is the
    /// identity; liveness overrides this to add the phi uses that live
    /// only on a specific incoming edge.
    fn edge(&self, _f: &Function, _from: BlockId, _to: BlockId, fact: &Self::Fact) -> Self::Fact {
        fact.clone()
    }
}

/// The fixpoint the solver reached.
#[derive(Debug, Clone)]
pub struct SolveResult<F> {
    /// Per-block fact on the side facts flow *in from*: block entry for
    /// forward analyses, block exit for backward analyses.
    pub input: Vec<F>,
    /// Per-block fact after [`DataflowAnalysis::transfer`]: block exit
    /// for forward analyses, block entry for backward analyses.
    pub output: Vec<F>,
    /// Whether the worklist drained before the iteration fuse blew. Only
    /// a non-monotone transfer function can make this `false`.
    pub converged: bool,
}

impl<F> SolveResult<F> {
    /// Fact on the flow-input side of `bb` (entry for forward, exit for
    /// backward).
    pub fn input(&self, bb: BlockId) -> &F {
        &self.input[bb.0 as usize]
    }

    /// Fact on the flow-output side of `bb` (exit for forward, entry for
    /// backward).
    pub fn output(&self, bb: BlockId) -> &F {
        &self.output[bb.0 as usize]
    }
}

/// Run `analysis` over `f` to a fixpoint with a worklist seeded in
/// (reverse) reverse-postorder, so acyclic flow converges in one sweep.
pub fn solve<A: DataflowAnalysis>(f: &Function, analysis: &A) -> SolveResult<A::Fact> {
    let nb = f.num_blocks();
    let dir = analysis.direction();

    // Flow-order neighbor maps: `sources[b]` feeds b, `sinks[b]` is fed
    // by b. For forward flow these are predecessors/successors; for
    // backward flow, the reverse.
    let preds = f.predecessors();
    let succs: Vec<Vec<BlockId>> = f.block_ids().map(|bb| f.successors(bb)).collect();
    let (sources, sinks) = match dir {
        Direction::Forward => (&preds, &succs),
        Direction::Backward => (&succs, &preds),
    };

    // Boundary blocks: where the analysis starts.
    let entry = f.entry();
    let is_boundary = |bb: BlockId| match dir {
        Direction::Forward => bb == entry,
        Direction::Backward => succs[bb.0 as usize].is_empty(),
    };

    let mut input: Vec<A::Fact> = f
        .block_ids()
        .map(|bb| {
            if is_boundary(bb) {
                analysis.boundary(f, bb)
            } else {
                analysis.top(f)
            }
        })
        .collect();
    let mut output: Vec<A::Fact> = f
        .block_ids()
        .map(|bb| analysis.transfer(f, bb, &input[bb.0 as usize]))
        .collect();

    // Seed the worklist in flow order: RPO for forward, reverse RPO for
    // backward (a good linearization of the reversed CFG for the
    // reducible CFGs the builder produces).
    let mut order = reverse_postorder(f);
    if dir == Direction::Backward {
        order.reverse();
    }
    // Unreachable blocks still get facts (initialized above) but are not
    // re-queued by neighbors of reachable ones; include them in the seed
    // so their transfer output stabilizes too.
    for bb in f.block_ids() {
        if !order.contains(&bb) {
            order.push(bb);
        }
    }

    let mut on_list = vec![true; nb];
    let mut worklist: std::collections::VecDeque<BlockId> = order.into();

    // Fuse: each block may be revisited at most lattice-height times; a
    // powerset lattice over the function's values bounds that by
    // `num_values + 2`. Anything past this indicates non-monotonicity.
    let mut fuel = (nb.max(1)) * (f.num_values() + 2) * 4 + 64;
    let mut converged = true;

    while let Some(bb) = worklist.pop_front() {
        on_list[bb.0 as usize] = false;
        if fuel == 0 {
            converged = false;
            break;
        }
        fuel -= 1;

        // Recompute the input-side fact from the flow sources.
        let new_in = if is_boundary(bb) && sources[bb.0 as usize].is_empty() {
            analysis.boundary(f, bb)
        } else {
            let mut acc: Option<A::Fact> = if is_boundary(bb) {
                // A boundary block with sources (e.g. a backward exit
                // block that is also a loop participant) meets the
                // boundary fact with its incoming facts.
                Some(analysis.boundary(f, bb))
            } else {
                None
            };
            for &src in &sources[bb.0 as usize] {
                let (from, to) = match dir {
                    Direction::Forward => (src, bb),
                    Direction::Backward => (bb, src),
                };
                let contrib = analysis.edge(f, from, to, &output[src.0 as usize]);
                acc = Some(match acc {
                    None => contrib,
                    Some(a) => analysis.meet(&a, &contrib),
                });
            }
            acc.unwrap_or_else(|| analysis.top(f))
        };

        let new_out = analysis.transfer(f, bb, &new_in);
        let changed = new_in != input[bb.0 as usize] || new_out != output[bb.0 as usize];
        input[bb.0 as usize] = new_in;
        if changed {
            output[bb.0 as usize] = new_out;
            for &sink in &sinks[bb.0 as usize] {
                if !on_list[sink.0 as usize] {
                    on_list[sink.0 as usize] = true;
                    worklist.push_back(sink);
                }
            }
        }
    }

    SolveResult {
        input,
        output,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Ty, ValueId};
    use std::collections::BTreeSet;

    /// Forward must-analysis: the set of i64 constants stored to *some*
    /// slot on every path so far (a toy, but exercises meet=intersection
    /// plus loops).
    struct StoredConsts;

    impl DataflowAnalysis for StoredConsts {
        type Fact = Option<BTreeSet<ValueId>>; // None = top (unvisited)

        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, _f: &Function, _bb: BlockId) -> Self::Fact {
            Some(BTreeSet::new())
        }
        fn top(&self, _f: &Function) -> Self::Fact {
            None
        }
        fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
            match (a, b) {
                (None, x) | (x, None) => x.clone(),
                (Some(a), Some(b)) => Some(a.intersection(b).copied().collect()),
            }
        }
        fn transfer(&self, f: &Function, bb: BlockId, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone()?;
            for &iv in &f.block(bb).insts {
                if let Some(pythia_ir::Inst::Store { value, .. }) = f.inst(iv) {
                    out.insert(*value);
                }
            }
            Some(out)
        }
    }

    #[test]
    fn forward_must_meet_is_path_intersection() {
        // entry stores `one`; only the then-arm stores `two`; the join
        // must keep `one` and drop `two`.
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let slot = b.alloca(Ty::I64);
        let one = b.const_i64(1);
        b.store(one, slot);
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        let two = b.const_i64(2);
        b.store(two, slot);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let v = b.load(slot);
        b.ret(Some(v));
        let f = b.finish();

        let sol = solve(&f, &StoredConsts);
        assert!(sol.converged);
        let at_join = sol.input(BlockId(3)).as_ref().unwrap();
        assert!(at_join.contains(&one));
        assert!(!at_join.contains(&two));
        let in_then = sol.output(BlockId(1)).as_ref().unwrap();
        assert!(in_then.contains(&two));
    }

    #[test]
    fn loops_reach_a_fixpoint() {
        // entry -> head; head -> body | exit; body -> head (stores `one`).
        // The loop head's input must settle at the intersection {} on the
        // first entry path vs {one} around the back edge -> {}.
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let head = b.new_block("head");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let slot = b.alloca(Ty::I64);
        b.jmp(head);
        b.switch_to(head);
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, body, exit);
        b.switch_to(body);
        let one = b.const_i64(1);
        b.store(one, slot);
        b.jmp(head);
        b.switch_to(exit);
        b.ret(Some(zero));
        let f = b.finish();

        let sol = solve(&f, &StoredConsts);
        assert!(sol.converged);
        let at_head = sol.input(BlockId(1)).as_ref().unwrap();
        assert!(at_head.is_empty(), "entry path has stored nothing");
        let at_exit = sol.input(BlockId(3)).as_ref().unwrap();
        assert!(at_exit.is_empty());
    }
}
