//! Module-wide, inclusion-based (Andersen-style) points-to analysis with
//! field-sensitive abstract objects.
//!
//! The paper's algorithms lean on alias analysis in three places: branch
//! decomposition must follow data flow *through memory* (a load's value
//! comes from the stores that may write the same object), the CPA scheme
//! must find may-aliases of signed variables (Alg. 2), and interprocedural
//! overflow handling checks whether pointer arguments may point at
//! vulnerable variables (§4.4).
//!
//! # Object model
//!
//! The analysis is context-insensitive but **field-sensitive**: a
//! `field_addr` on a pointer to a struct-typed stack slot or global yields
//! a distinct [`MemObjectKind::Field`] object — identified by its *root*
//! object plus a byte extent — instead of the whole allocation. Two field
//! objects may-alias only when they share a root and their byte extents
//! overlap; a field always overlaps its root (a store through the base
//! pointer can write any field). This mirrors the field-sensitive half of
//! LLVM's `basic-aa` that the paper's pipeline relies on, and is what lets
//! the obligation pruner distinguish "the attacker can smash `s.buf`" from
//! "the attacker can smash `s.privilege`".
//!
//! Safe fallbacks keep the relation sound:
//! - `gep` (variable-index pointer arithmetic) stays monolithic: the result
//!   keeps the whole base object, never a field split.
//! - `field_addr` through ⊤, through a non-struct object, through a heap
//!   object (allocation sites carry no type), or with an out-of-range index
//!   falls back to the base object.
//! - `inttoptr` (pointer forging, paper §3.1) poisons a value with the ⊤
//!   ("unknown") marker, which the clients treat as may-alias-anything.
//! - Loads read the memory of every object *overlapping* the pointee
//!   (root + intersecting fields), so pointers stored through a base
//!   pointer are still seen by loads through a field pointer and vice
//!   versa.
//!
//! [`PointsTo::analyze_with`] selects the precision; the field-insensitive
//! mode reproduces the pre-upgrade relation exactly (field objects are
//! never interned, so base object ids are identical across the two modes —
//! the refinement property tests rely on this).
//!
//! # Context sensitivity (1-CFA)
//!
//! [`CtxPointsTo`] re-runs the same constraint system with every function
//! cloned once per *calling context*: the inter-SCC callsite that entered
//! the function's strongly-connected component (1-CFA, with SCC collapse —
//! calls inside a recursion cycle inherit the caller's context, keeping
//! the context set finite). Abstract objects stay context-insensitive
//! (one [`ObjId`] space shared with the insensitive relation), so clients
//! can mix per-context value sets with the insensitive object metadata.
//! A node-count budget guards against cloning blow-up: past it the
//! analysis degrades to the insensitive relation (recorded in
//! [`CtxStats::fallback`]), which is always a sound superset — the
//! refinement tests assert per-context sets never exceed the insensitive
//! ones.

use crate::callgraph::CallGraph;
use pythia_ir::{Callee, FuncId, GlobalId, Inst, Intrinsic, Module, Ty, ValueId, ValueKind};
use std::collections::{BTreeSet, HashMap};

/// Precision of the points-to object model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// `field_addr` copies the base object (the pre-upgrade behavior, and
    /// the model DFI-style analyses assume).
    FieldInsensitive,
    /// `field_addr` on struct-typed stack/global objects yields a distinct
    /// per-field abstract object.
    #[default]
    FieldSensitive,
}

/// What an abstract memory object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemObjectKind {
    /// A stack slot: `alloca` instruction `value` in function `func`.
    Stack {
        /// Owning function.
        func: FuncId,
        /// The alloca instruction's value id.
        value: ValueId,
    },
    /// A module global.
    Global(GlobalId),
    /// A heap allocation site: the allocating call `value` in `func`.
    Heap {
        /// Function containing the allocation site.
        func: FuncId,
        /// The call instruction's value id.
        value: ValueId,
    },
    /// A field of a struct-typed root object, as a byte extent. Only the
    /// field-sensitive mode creates these; `base` always names a non-field
    /// (root) object.
    Field {
        /// The root object this field belongs to.
        base: ObjId,
        /// Byte offset of the field within the root object.
        offset: u64,
        /// Byte size of the field (at least 1).
        size: u64,
    },
}

impl MemObjectKind {
    /// Whether this is a [`MemObjectKind::Field`] split.
    pub fn is_field(&self) -> bool {
        matches!(self, MemObjectKind::Field { .. })
    }
}

/// Index of an abstract object in [`PointsTo::objects`].
pub type ObjId = u32;

/// A points-to set: a set of abstract objects, possibly widened to ⊤.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjSet {
    /// Concrete objects.
    pub objects: BTreeSet<ObjId>,
    /// ⊤ marker: may point anywhere (set by `inttoptr` and its flows).
    pub unknown: bool,
}

impl ObjSet {
    /// Union `other` into `self`; returns whether anything changed.
    pub fn merge(&mut self, other: &ObjSet) -> bool {
        let before = self.objects.len();
        self.objects.extend(other.objects.iter().copied());
        let mut changed = self.objects.len() != before;
        if other.unknown && !self.unknown {
            self.unknown = true;
            changed = true;
        }
        changed
    }

    /// Whether the set is empty and not ⊤.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty() && !self.unknown
    }

    /// May this set and `other` share an object *id*? (Pure set-level
    /// check; for the extent-aware question use [`PointsTo::may_alias`],
    /// which also treats a field and its root as overlapping.)
    pub fn may_overlap(&self, other: &ObjSet) -> bool {
        if (self.unknown && !other.is_empty()) || (other.unknown && !self.is_empty()) {
            return true;
        }
        if self.unknown && other.unknown {
            return true;
        }
        self.objects.intersection(&other.objects).next().is_some()
    }
}

/// Result of the points-to analysis.
#[derive(Debug, Clone)]
pub struct PointsTo {
    objects: Vec<MemObjectKind>,
    obj_index: HashMap<MemObjectKind, ObjId>,
    /// pts for each value node.
    value_pts: Vec<ObjSet>,
    /// pts of each object's *memory* (what stored pointers may point to).
    mem_pts: Vec<ObjSet>,
    /// node numbering
    value_base: Vec<u32>,
    /// Field objects of each root object, populated during the solve.
    fields_of: HashMap<ObjId, Vec<ObjId>>,
    /// Per-object content type (what the object's bytes hold), used to
    /// resolve `field_addr` splits. `None` = unknown layout (heap sites).
    content_ty: Vec<Option<Ty>>,
    /// Byte offset of each object within its root (0 for roots).
    obj_offset: Vec<u64>,
    precision: Precision,
}

impl PointsTo {
    fn node(&self, func: FuncId, value: ValueId) -> usize {
        (self.value_base[func.0 as usize] + value.0) as usize
    }

    /// All abstract objects discovered.
    pub fn objects(&self) -> &[MemObjectKind] {
        &self.objects
    }

    /// Object id for a kind, if it exists.
    pub fn obj_id(&self, kind: MemObjectKind) -> Option<ObjId> {
        self.obj_index.get(&kind).copied()
    }

    /// Object kind by id.
    pub fn obj_kind(&self, id: ObjId) -> MemObjectKind {
        self.objects[id as usize]
    }

    /// The precision this relation was computed at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The root object of `id`: itself for stack/global/heap objects, the
    /// underlying allocation for field objects. Root ids are identical
    /// across the two precisions (fields are interned strictly after every
    /// root), so coarsening by `base_object` maps a field-sensitive set
    /// into the field-insensitive object space.
    pub fn base_object(&self, id: ObjId) -> ObjId {
        match self.objects[id as usize] {
            MemObjectKind::Field { base, .. } => base,
            _ => id,
        }
    }

    /// Byte extent `(offset, size)` of `id` within its root, if it is a
    /// field object.
    pub fn field_extent(&self, id: ObjId) -> Option<(u64, u64)> {
        match self.objects[id as usize] {
            MemObjectKind::Field { offset, size, .. } => Some((offset, size)),
            _ => None,
        }
    }

    /// May objects `a` and `b` occupy overlapping bytes? A field always
    /// overlaps its root; sibling fields overlap iff their byte extents
    /// intersect; objects with different roots never overlap.
    pub fn object_overlaps(&self, a: ObjId, b: ObjId) -> bool {
        if a == b {
            return true;
        }
        if self.base_object(a) != self.base_object(b) {
            return false;
        }
        match (self.field_extent(a), self.field_extent(b)) {
            // Same root, at least one side is the root itself.
            (None, _) | (_, None) => true,
            (Some((ao, asz)), Some((bo, bsz))) => ao < bo + bsz && bo < ao + asz,
        }
    }

    /// Every object overlapping `id` (including `id` itself): the root,
    /// plus every field of the root whose extent intersects.
    pub fn overlapping_objects(&self, id: ObjId) -> Vec<ObjId> {
        let root = self.base_object(id);
        let mut out = vec![id];
        if root != id {
            out.push(root);
        }
        if let Some(fields) = self.fields_of.get(&root) {
            for &f in fields {
                if f != id && self.object_overlaps(id, f) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// Total number of abstract objects (roots + field splits).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of field-split objects the sensitive mode interned.
    pub fn num_field_objects(&self) -> usize {
        self.objects.iter().filter(|o| o.is_field()).count()
    }

    /// Mean points-to set size over all value nodes with a non-empty set —
    /// the paper-style precision headline (smaller is sharper).
    pub fn avg_points_to_size(&self) -> f64 {
        let (mut sum, mut n) = (0usize, 0usize);
        for s in &self.value_pts {
            if !s.is_empty() {
                sum += s.objects.len();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Points-to set of value `value` in `func`.
    pub fn points_to(&self, func: FuncId, value: ValueId) -> &ObjSet {
        &self.value_pts[self.node(func, value)]
    }

    /// What the memory of object `obj` may point to.
    pub fn memory_points_to(&self, obj: ObjId) -> &ObjSet {
        &self.mem_pts[obj as usize]
    }

    /// May two pointer values alias (refer to overlapping objects)? This
    /// is extent-aware: a pointer to a field aliases a pointer to its
    /// containing object, but not a pointer to a disjoint sibling field.
    pub fn may_alias(&self, a: (FuncId, ValueId), b: (FuncId, ValueId)) -> bool {
        let pa = self.points_to(a.0, a.1);
        let pb = self.points_to(b.0, b.1);
        if (pa.unknown && !pb.is_empty()) || (pb.unknown && !pa.is_empty()) {
            return true;
        }
        if pa.unknown && pb.unknown {
            return true;
        }
        pa.objects
            .iter()
            .any(|&x| pb.objects.iter().any(|&y| self.object_overlaps(x, y)))
    }

    /// Objects a store through `ptr` may write. `None` means ⊤ (anything).
    pub fn write_targets(&self, func: FuncId, ptr: ValueId) -> Option<Vec<ObjId>> {
        let pts = self.points_to(func, ptr);
        if pts.unknown {
            None
        } else {
            Some(pts.objects.iter().copied().collect())
        }
    }

    /// Run the analysis over a module at the default (field-sensitive)
    /// precision.
    pub fn analyze(m: &Module) -> Self {
        Self::analyze_with(m, Precision::FieldSensitive)
    }

    /// Run the analysis at an explicit precision. Root object ids are
    /// identical across precisions.
    pub fn analyze_with(m: &Module, precision: Precision) -> Self {
        Builder::new(m, precision).solve()
    }

    /// The *already interned* field object for field `field` of `o`, or
    /// `None` when no split applies (non-struct content, unknown layout,
    /// out-of-range index — the same fallbacks as the solve itself) and
    /// the caller must use `o`. Lookup-only: refining solvers layered over
    /// this relation resolve their (⊆-smaller) `FieldOf` edges through
    /// here, so their object space is exactly this relation's ids and no
    /// remapping step is needed.
    pub(crate) fn resolve_field(&self, o: ObjId, field: u32) -> Option<ObjId> {
        let content = self.content_ty[o as usize].as_ref()?;
        let Ty::Struct(fields) = content else {
            return None;
        };
        if field as usize >= fields.len() {
            return None;
        }
        let root = self.base_object(o);
        let offset = self.obj_offset[o as usize] + content.field_offset(field);
        let size = content.field_ty(field).size().max(1);
        self.obj_id(MemObjectKind::Field {
            base: root,
            offset,
            size,
        })
    }
}

/// One function's context-agnostic points-to constraints, gathered once
/// per function from the IR and instantiated per calling context. Both
/// the clone-based builder below and the summary solver
/// ([`crate::summary`]) replay exactly this list, which is what makes
/// their per-instruction semantics identical by construction (the OPT-02
/// equivalence check then only has to compare *solving* strategies).
#[derive(Debug, Clone)]
pub(crate) enum LocalConstraint {
    /// `pts(dst) ⊇ pts(src)` (both values of this function).
    Copy {
        /// Source value.
        src: ValueId,
        /// Destination value.
        dst: ValueId,
    },
    /// `pts(dst) ⊇ mem(o')` for each `o ∈ pts(ptr)`, `o'` overlapping `o`.
    Load {
        /// Pointer operand.
        ptr: ValueId,
        /// Loaded value.
        dst: ValueId,
    },
    /// `mem(o) ⊇ pts(src)` for each `o ∈ pts(ptr)`. Carries the store
    /// instruction's own id so flow-sensitive strong updates can drop it.
    Store {
        /// The store instruction's value id.
        inst: ValueId,
        /// Pointer operand.
        ptr: ValueId,
        /// Stored value.
        src: ValueId,
    },
    /// `pts(dst) ⊇ { field(o, field) | o ∈ pts(base) }` (field-sensitive
    /// mode only; the insensitive gather emits a `Copy` instead).
    FieldOf {
        /// Base pointer.
        base: ValueId,
        /// Result value.
        dst: ValueId,
        /// Field index.
        field: u32,
    },
    /// Seed `dst` with the object of `kind` (alloca / heap site / global
    /// address), whose content layout is `content`.
    Seed {
        /// The value holding the object's address.
        dst: ValueId,
        /// Object identity.
        kind: MemObjectKind,
        /// Content layout (`None` for heap sites).
        content: Option<Ty>,
    },
    /// Seed `dst` with ⊤ (`inttoptr` forging).
    SeedUnknown {
        /// The forged pointer value.
        dst: ValueId,
    },
    /// A resolved call edge: `args` flow into `target`'s parameters and
    /// `target`'s returned values flow back into `site`. Indirect calls
    /// emit one edge per address-taken, arity-matching candidate.
    Call {
        /// The call instruction's value id.
        site: ValueId,
        /// Resolved callee.
        target: FuncId,
        /// Argument values at the site.
        args: Vec<ValueId>,
    },
}

/// Gather the context-agnostic constraint list of one function. The
/// emission order mirrors the value order of the function, so replaying
/// the list interns objects in the exact order the monolithic gather did.
pub(crate) fn gather_function(
    m: &Module,
    fid: FuncId,
    precision: Precision,
    address_taken: &[FuncId],
) -> Vec<LocalConstraint> {
    let f = m.func(fid);
    let mut out = Vec::new();
    for v in f.value_ids() {
        match &f.value(v).kind {
            ValueKind::GlobalAddr(g) => {
                let ty = m.global(*g).ty.clone();
                out.push(LocalConstraint::Seed {
                    dst: v,
                    kind: MemObjectKind::Global(*g),
                    content: Some(ty),
                });
            }
            ValueKind::Inst(inst) => {
                gather_inst(m, fid, v, inst, precision, address_taken, &mut out)
            }
            _ => {}
        }
    }
    out
}

fn gather_inst(
    m: &Module,
    fid: FuncId,
    v: ValueId,
    inst: &Inst,
    precision: Precision,
    address_taken: &[FuncId],
    out: &mut Vec<LocalConstraint>,
) {
    match inst {
        Inst::Alloca { elem, count } => {
            let content = if *count <= 1 {
                elem.clone()
            } else {
                Ty::array(elem.clone(), *count)
            };
            out.push(LocalConstraint::Seed {
                dst: v,
                kind: MemObjectKind::Stack {
                    func: fid,
                    value: v,
                },
                content: Some(content),
            });
        }
        Inst::Load { ptr } => out.push(LocalConstraint::Load { ptr: *ptr, dst: v }),
        Inst::Store { ptr, value } => out.push(LocalConstraint::Store {
            inst: v,
            ptr: *ptr,
            src: *value,
        }),
        Inst::Gep { base, .. } => {
            // Variable-index pointer arithmetic stays monolithic: the
            // result keeps the whole base object (safe fallback).
            out.push(LocalConstraint::Copy { src: *base, dst: v });
        }
        Inst::FieldAddr { base, field } => match precision {
            Precision::FieldSensitive => out.push(LocalConstraint::FieldOf {
                base: *base,
                dst: v,
                field: *field,
            }),
            Precision::FieldInsensitive => out.push(LocalConstraint::Copy { src: *base, dst: v }),
        },
        Inst::Bin { lhs, rhs, .. } => {
            // Pointer arithmetic through integer ops keeps the base
            // objects (conservative: union both sides).
            for s in [lhs, rhs] {
                out.push(LocalConstraint::Copy { src: *s, dst: v });
            }
        }
        Inst::Cast { kind, value, .. } => {
            use pythia_ir::CastKind;
            if matches!(kind, CastKind::IntToPtr) {
                // Forged pointer: ⊤, but also keep whatever the integer
                // was carrying (ptrtoint round trips).
                out.push(LocalConstraint::SeedUnknown { dst: v });
            }
            out.push(LocalConstraint::Copy { src: *value, dst: v });
        }
        Inst::Select {
            on_true, on_false, ..
        } => {
            for s in [on_true, on_false] {
                out.push(LocalConstraint::Copy { src: *s, dst: v });
            }
        }
        Inst::Phi { incomings } => {
            for (_, s) in incomings {
                out.push(LocalConstraint::Copy { src: *s, dst: v });
            }
        }
        Inst::PacSign { value, .. } | Inst::PacAuth { value, .. } | Inst::PacStrip { value } => {
            out.push(LocalConstraint::Copy { src: *value, dst: v });
        }
        Inst::Call { callee, args } => match callee {
            Callee::Func(target) => out.push(LocalConstraint::Call {
                site: v,
                target: *target,
                args: args.clone(),
            }),
            Callee::Indirect(_) => {
                for t in address_taken
                    .iter()
                    .copied()
                    .filter(|t| m.func(*t).params.len() == args.len())
                {
                    out.push(LocalConstraint::Call {
                        site: v,
                        target: t,
                        args: args.clone(),
                    });
                }
            }
            Callee::Intrinsic(i) => {
                if i.is_allocator() {
                    // Allocation sites carry no layout, so heap objects are
                    // never field-split (content type unknown).
                    out.push(LocalConstraint::Seed {
                        dst: v,
                        kind: MemObjectKind::Heap {
                            func: fid,
                            value: v,
                        },
                        content: None,
                    });
                }
                match i {
                    // Channels that return their destination argument.
                    Intrinsic::Memcpy
                    | Intrinsic::Memmove
                    | Intrinsic::Strcpy
                    | Intrinsic::Strncpy
                    | Intrinsic::Sstrncpy
                    | Intrinsic::Strcat
                    | Intrinsic::Strncat
                    | Intrinsic::Fgets
                    | Intrinsic::Gets
                    | Intrinsic::Memset => {
                        if let Some(dst) = args.first() {
                            out.push(LocalConstraint::Copy { src: *dst, dst: v });
                        }
                    }
                    Intrinsic::Realloc => {
                        if let Some(old) = args.first() {
                            out.push(LocalConstraint::Copy { src: *old, dst: v });
                        }
                    }
                    _ => {}
                }
            }
        },
        _ => {}
    }
}

/// Collect address-taken functions, in first-sighting order (shared by
/// the gather, the context plans and the call graph's indirect-call
/// resolution so every linked edge has a context to land in).
pub(crate) fn collect_address_taken(m: &Module) -> Vec<FuncId> {
    let mut out: Vec<FuncId> = Vec::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for v in f.value_ids() {
            if let ValueKind::FuncAddr(t) = f.value(v).kind {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Constraint kinds gathered from the IR.
#[derive(Debug, Clone, Copy)]
enum Constraint {
    /// `pts(dst) ⊇ pts(src)`
    Copy { src: usize, dst: usize },
    /// `pts(dst) ⊇ mem(o')` for each `o ∈ pts(ptr)`, `o'` overlapping `o`
    Load { ptr: usize, dst: usize },
    /// `mem(o) ⊇ pts(src)` for each `o ∈ pts(ptr)`
    Store { ptr: usize, src: usize },
    /// `pts(dst) ⊇ { field(o, field) | o ∈ pts(base) }`, where `field(o, f)`
    /// is the interned field object when `o` is struct-typed and `o` itself
    /// otherwise (the safe fallback). Only emitted in field-sensitive mode.
    FieldOf {
        base: usize,
        dst: usize,
        field: u32,
    },
}

struct Builder<'m> {
    m: &'m Module,
    pt: PointsTo,
    constraints: Vec<Constraint>,
    /// 1-CFA cloning plan; `None` = the context-insensitive solve.
    plan: Option<CtxPlan>,
    /// While gathering under a plan: the context index of the function
    /// currently being gathered.
    cur_ctx: usize,
}

impl<'m> Builder<'m> {
    fn new(m: &'m Module, precision: Precision) -> Self {
        // Number value nodes.
        let mut value_base = Vec::with_capacity(m.functions().len());
        let mut total = 0u32;
        for f in m.functions() {
            value_base.push(total);
            total += f.num_values() as u32;
        }
        let pt = PointsTo {
            objects: Vec::new(),
            obj_index: HashMap::new(),
            value_pts: vec![ObjSet::default(); total as usize],
            mem_pts: Vec::new(),
            value_base,
            fields_of: HashMap::new(),
            content_ty: Vec::new(),
            obj_offset: Vec::new(),
            precision,
        };
        Builder {
            m,
            pt,
            constraints: Vec::new(),
            plan: None,
            cur_ctx: 0,
        }
    }

    /// A builder whose value-node space is cloned per calling context.
    /// Always field-sensitive (the precision the context layer refines).
    fn with_plan(m: &'m Module, plan: CtxPlan) -> Self {
        let mut b = Self::new(m, Precision::FieldSensitive);
        b.pt.value_pts = vec![ObjSet::default(); plan.total];
        b.plan = Some(plan);
        b
    }

    /// Node of `(fid, v)` in the *current* gathering context.
    fn vnode(&self, fid: FuncId, v: ValueId) -> usize {
        match &self.plan {
            None => self.pt.node(fid, v),
            Some(p) => p.node(fid, self.cur_ctx, v),
        }
    }

    /// Node of `(fid, v)` in an explicit context (cross-function links).
    fn vnode_at(&self, fid: FuncId, ctx: usize, v: ValueId) -> usize {
        match &self.plan {
            None => self.pt.node(fid, v),
            Some(p) => p.node(fid, ctx, v),
        }
    }

    /// The context `target` runs under when called from `site` in `caller`
    /// (gathered under `self.cur_ctx`): the caller's own context for an
    /// intra-SCC (recursive) call, the callsite's context otherwise.
    fn callee_ctx(&self, caller: FuncId, site: ValueId, target: FuncId) -> usize {
        let Some(p) = &self.plan else { return 0 };
        if p.scc_of[caller.0 as usize] == p.scc_of[target.0 as usize] {
            return self.cur_ctx;
        }
        p.ctx_index(target, CtxKey::Site(caller, site))
    }

    fn intern_obj(&mut self, kind: MemObjectKind, content: Option<Ty>, offset: u64) -> ObjId {
        if let Some(&id) = self.pt.obj_index.get(&kind) {
            return id;
        }
        let id = self.pt.objects.len() as ObjId;
        self.pt.objects.push(kind);
        self.pt.obj_index.insert(kind, id);
        self.pt.mem_pts.push(ObjSet::default());
        self.pt.content_ty.push(content);
        self.pt.obj_offset.push(offset);
        if let MemObjectKind::Field { base, .. } = kind {
            self.pt.fields_of.entry(base).or_default().push(id);
        }
        id
    }

    /// The field object for field `field` of object `o`, or `None` when
    /// the split is not possible (non-struct content, unknown layout,
    /// out-of-range index) and the caller must fall back to `o` itself.
    fn field_object(&mut self, o: ObjId, field: u32) -> Option<ObjId> {
        let content = self.pt.content_ty[o as usize].clone()?;
        let Ty::Struct(fields) = &content else {
            return None;
        };
        if field as usize >= fields.len() {
            return None;
        }
        let root = self.pt.base_object(o);
        let offset = self.pt.obj_offset[o as usize] + content.field_offset(field);
        let fty = content.field_ty(field).clone();
        let size = fty.size().max(1);
        Some(self.intern_obj(
            MemObjectKind::Field {
                base: root,
                offset,
                size,
            },
            Some(fty),
            offset,
        ))
    }

    fn seed(&mut self, node: usize, obj: ObjId) {
        self.pt.value_pts[node].objects.insert(obj);
    }

    fn seed_unknown(&mut self, node: usize) {
        self.pt.value_pts[node].unknown = true;
    }

    fn gather(&mut self) {
        // Pre-create global objects (module order, before any stack/heap
        // object, so global ids line up across precisions).
        for g in self.m.global_ids() {
            let ty = self.m.global(g).ty.clone();
            self.intern_obj(MemObjectKind::Global(g), Some(ty), 0);
        }
        let address_taken = collect_address_taken(self.m);
        let locals: Vec<Vec<LocalConstraint>> = self
            .m
            .func_ids()
            .map(|fid| gather_function(self.m, fid, self.pt.precision, &address_taken))
            .collect();

        for fid in self.m.func_ids() {
            let nctx = self.plan.as_ref().map_or(1, |p| p.nctx(fid));
            for ci in 0..nctx {
                self.cur_ctx = ci;
                for lc in &locals[fid.0 as usize] {
                    self.apply_local(fid, lc);
                }
            }
        }
    }

    /// Instantiate one shared constraint in the current gathering context.
    fn apply_local(&mut self, fid: FuncId, lc: &LocalConstraint) {
        match lc {
            LocalConstraint::Copy { src, dst } => {
                let (s, d) = (self.vnode(fid, *src), self.vnode(fid, *dst));
                self.constraints.push(Constraint::Copy { src: s, dst: d });
            }
            LocalConstraint::Load { ptr, dst } => {
                let (p, d) = (self.vnode(fid, *ptr), self.vnode(fid, *dst));
                self.constraints.push(Constraint::Load { ptr: p, dst: d });
            }
            LocalConstraint::Store { ptr, src, .. } => {
                let (p, s) = (self.vnode(fid, *ptr), self.vnode(fid, *src));
                self.constraints.push(Constraint::Store { ptr: p, src: s });
            }
            LocalConstraint::FieldOf { base, dst, field } => {
                let (b, d) = (self.vnode(fid, *base), self.vnode(fid, *dst));
                self.constraints.push(Constraint::FieldOf {
                    base: b,
                    dst: d,
                    field: *field,
                });
            }
            LocalConstraint::Seed { dst, kind, content } => {
                let o = self.intern_obj(*kind, content.clone(), 0);
                let node = self.vnode(fid, *dst);
                self.seed(node, o);
            }
            LocalConstraint::SeedUnknown { dst } => {
                let node = self.vnode(fid, *dst);
                self.seed_unknown(node);
            }
            LocalConstraint::Call { site, target, args } => {
                let node = self.vnode(fid, *site);
                self.link_call(fid, *site, node, *target, args);
            }
        }
    }

    fn link_call(
        &mut self,
        fid: FuncId,
        v: ValueId,
        node: usize,
        target: FuncId,
        args: &[ValueId],
    ) {
        let callee = self.m.func(target);
        // Under a context plan, the callee's values are qualified by the
        // context this callsite selects; intra-SCC calls stay in the
        // caller's context so recursive cycles keep the context set finite.
        let tctx = self.callee_ctx(fid, v, target);
        for (i, a) in args.iter().enumerate() {
            if i >= callee.params.len() {
                break;
            }
            let an = self.vnode(fid, *a);
            let pn = self.vnode_at(target, tctx, callee.arg(i));
            self.constraints.push(Constraint::Copy { src: an, dst: pn });
        }
        // Return values flow back to the call node.
        for bb in callee.block_ids() {
            if let Some(Inst::Ret { value: Some(rv) }) = callee.terminator(bb) {
                let rn = self.vnode_at(target, tctx, *rv);
                self.constraints
                    .push(Constraint::Copy { src: rn, dst: node });
            }
        }
    }

    fn solve(mut self) -> PointsTo {
        self.gather();
        // Simple round-robin fixpoint; the constraint sets in generated
        // benchmarks are small enough (tens of thousands) that this
        // converges in a handful of rounds. Field objects are interned
        // lazily as `FieldOf` constraints first see a struct-typed base,
        // strictly after every root object.
        let mut changed = true;
        while changed {
            changed = false;
            for ci in 0..self.constraints.len() {
                match self.constraints[ci] {
                    Constraint::Copy { src, dst } => {
                        if src == dst {
                            continue;
                        }
                        let (s, d) = get_two(&mut self.pt.value_pts, src, dst);
                        if d.merge(s) {
                            changed = true;
                        }
                    }
                    Constraint::Load { ptr, dst } => {
                        let objs: Vec<ObjId> =
                            self.pt.value_pts[ptr].objects.iter().copied().collect();
                        let ptr_unknown = self.pt.value_pts[ptr].unknown;
                        for o in objs {
                            // A load must see pointers stored through any
                            // overlapping view of the same bytes (the root,
                            // or an intersecting sibling field).
                            for o2 in self.pt.overlapping_objects(o) {
                                let mem = self.pt.mem_pts[o2 as usize].clone();
                                if self.pt.value_pts[dst].merge(&mem) {
                                    changed = true;
                                }
                            }
                        }
                        if ptr_unknown && !self.pt.value_pts[dst].unknown {
                            self.pt.value_pts[dst].unknown = true;
                            changed = true;
                        }
                    }
                    Constraint::Store { ptr, src } => {
                        let objs: Vec<ObjId> =
                            self.pt.value_pts[ptr].objects.iter().copied().collect();
                        let val = self.pt.value_pts[src].clone();
                        for o in objs {
                            if self.pt.mem_pts[o as usize].merge(&val) {
                                changed = true;
                            }
                        }
                    }
                    Constraint::FieldOf { base, dst, field } => {
                        let objs: Vec<ObjId> =
                            self.pt.value_pts[base].objects.iter().copied().collect();
                        let base_unknown = self.pt.value_pts[base].unknown;
                        for o in objs {
                            let target = self.field_object(o, field).unwrap_or(o);
                            if self.pt.value_pts[dst].objects.insert(target) {
                                changed = true;
                            }
                        }
                        if base_unknown && !self.pt.value_pts[dst].unknown {
                            self.pt.value_pts[dst].unknown = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        self.pt
    }
}

fn get_two<T>(v: &mut [T], a: usize, b: usize) -> (&T, &mut T) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&hi[0], &mut lo[b])
    }
}

/// Hard ceiling on the number of cloned value nodes the 1-CFA solve may
/// allocate. Past it, [`CtxPointsTo::analyze`] degrades to the insensitive
/// relation (always a sound superset), recorded in [`CtxStats::fallback`].
pub const CTX_NODE_BUDGET: usize = 2_000_000;

/// A calling context under 1-CFA with SCC collapse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CtxKey {
    /// Entry context: the SCC has no known inter-SCC caller (e.g. `main`).
    Root,
    /// The inter-SCC callsite `(caller, call value)` that entered the SCC.
    Site(FuncId, ValueId),
}

/// The cloning plan of a 1-CFA solve: which contexts each function runs
/// under, and where each `(function, context)` clone lives in the node
/// space. Every member of a callgraph SCC shares one context list, so an
/// intra-SCC (recursive) call can inherit the caller's context *index*
/// directly — that collapse is what keeps the context set finite.
#[derive(Debug, Clone)]
struct CtxPlan {
    /// SCC index of each function.
    scc_of: Vec<usize>,
    /// Ordered context keys per function (shared across its SCC).
    ctx_keys: Vec<Vec<CtxKey>>,
    /// Node-space base of each `(function, context)` clone.
    bases: Vec<Vec<u32>>,
    /// Total cloned value nodes.
    total: usize,
}

impl CtxPlan {
    /// Build the plan, or `None` if cloning would exceed `budget` nodes.
    fn build(m: &Module, budget: usize) -> Option<CtxPlan> {
        let cg = CallGraph::build(m);
        let nf = m.functions().len();
        let sccs = cg.sccs();
        let mut scc_of = vec![0usize; nf];
        for (i, comp) in sccs.iter().enumerate() {
            for f in comp {
                scc_of[f.0 as usize] = i;
            }
        }
        // Indirect-call resolution must mirror the constraint gatherer
        // (address-taken + arity match) so every edge `link_call` creates
        // has a context key to land in.
        let address_taken = collect_address_taken(m);
        let mut keys_of_scc: Vec<Vec<CtxKey>> = vec![Vec::new(); sccs.len()];
        for fid in m.func_ids() {
            let f = m.func(fid);
            for v in f.value_ids() {
                let ValueKind::Inst(Inst::Call { callee, args }) = &f.value(v).kind else {
                    continue;
                };
                let targets: Vec<FuncId> = match callee {
                    Callee::Func(t) => vec![*t],
                    Callee::Indirect(_) => address_taken
                        .iter()
                        .copied()
                        .filter(|t| m.func(*t).params.len() == args.len())
                        .collect(),
                    Callee::Intrinsic(_) => Vec::new(),
                };
                for t in targets {
                    if scc_of[t.0 as usize] == scc_of[fid.0 as usize] {
                        continue; // intra-SCC: inherits, never a new context
                    }
                    let key = CtxKey::Site(fid, v);
                    let ks = &mut keys_of_scc[scc_of[t.0 as usize]];
                    if !ks.contains(&key) {
                        ks.push(key);
                    }
                }
            }
        }
        for ks in &mut keys_of_scc {
            if ks.is_empty() {
                ks.push(CtxKey::Root);
            }
            ks.sort();
        }
        let mut ctx_keys = vec![Vec::new(); nf];
        let mut bases = vec![Vec::new(); nf];
        let mut total = 0usize;
        for fid in m.func_ids() {
            let f = m.func(fid);
            let ks = keys_of_scc[scc_of[fid.0 as usize]].clone();
            let mut b = Vec::with_capacity(ks.len());
            for _ in &ks {
                b.push(total as u32);
                total += f.num_values();
                if total > budget {
                    return None;
                }
            }
            ctx_keys[fid.0 as usize] = ks;
            bases[fid.0 as usize] = b;
        }
        Some(CtxPlan {
            scc_of,
            ctx_keys,
            bases,
            total,
        })
    }

    fn nctx(&self, f: FuncId) -> usize {
        self.ctx_keys[f.0 as usize].len()
    }

    fn node(&self, f: FuncId, ctx: usize, v: ValueId) -> usize {
        (self.bases[f.0 as usize][ctx] + v.0) as usize
    }

    /// Index of `key` in `f`'s context list. By construction every edge the
    /// gatherer links has a key; a miss is a plan/gather divergence bug.
    fn ctx_index(&self, f: FuncId, key: CtxKey) -> usize {
        self.ctx_keys[f.0 as usize]
            .iter()
            .position(|k| *k == key)
            .expect("callsite missing from 1-CFA context plan")
    }

    fn key(&self, f: FuncId, ctx: usize) -> CtxKey {
        self.ctx_keys[f.0 as usize][ctx]
    }
}

/// Headline counters of a [`CtxPointsTo`] solve, surfaced per benchmark in
/// BENCH_suite.json / profile.md.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtxStats {
    /// Total calling contexts across all functions (one per function when
    /// the solve fell back).
    pub contexts: usize,
    /// Total cloned value nodes the contexts cost (0 on fallback).
    pub cloned_nodes: usize,
    /// Whether the node budget (or an object-remap miss) forced a fallback
    /// to the insensitive relation.
    pub fallback: bool,
}

/// 1-CFA points-to relation layered over an insensitive base [`PointsTo`].
///
/// Abstract objects are shared with the base relation — every per-context
/// set speaks in the base's [`ObjId`]s, so clients can freely mix
/// per-context value sets with the base object metadata (kinds, extents,
/// memory sets). On fallback the queries return `None` and callers must
/// use the base relation, which is always a sound superset.
#[derive(Debug, Clone)]
pub struct CtxPointsTo {
    data: Option<CtxData>,
    stats: CtxStats,
}

#[derive(Debug, Clone)]
struct CtxData {
    plan: CtxPlan,
    /// Per-clone points-to sets, remapped onto the base relation's ids.
    value_pts: Vec<ObjSet>,
}

impl CtxPointsTo {
    /// Run the 1-CFA solve over `m` at the default node budget. `base`
    /// must be the field-sensitive relation of the same module.
    pub fn analyze(m: &Module, base: &PointsTo) -> Self {
        Self::analyze_with_budget(m, base, CTX_NODE_BUDGET)
    }

    /// The trivial no-context relation: every query returns `None` and
    /// callers use the insensitive base. Used both as the budget-exhausted
    /// fallback and as the forced-insensitive context policy.
    pub(crate) fn insensitive(m: &Module) -> Self {
        CtxPointsTo {
            data: None,
            stats: CtxStats {
                contexts: m.functions().len(),
                cloned_nodes: 0,
                fallback: true,
            },
        }
    }

    /// Run the 1-CFA solve with an explicit node budget.
    pub fn analyze_with_budget(m: &Module, base: &PointsTo, budget: usize) -> Self {
        let fallback = || Self::insensitive(m);
        let Some(plan) = CtxPlan::build(m, budget) else {
            return fallback();
        };
        let pt = Builder::with_plan(m, plan.clone()).solve();
        // Remap the ctx solve's object ids onto the base relation's. Roots
        // intern in the same program order in both solves, and the ctx
        // solve's field splits derive from (⊆-smaller) pointee sets, so
        // every kind should resolve in the base; a miss means the two
        // relations diverged and the only sound answer is the base one.
        let mut map: Vec<ObjId> = Vec::with_capacity(pt.objects.len());
        for kind in &pt.objects {
            let mapped_kind = match *kind {
                MemObjectKind::Field { base: b, offset, size } => MemObjectKind::Field {
                    // Roots intern strictly before their fields, so the
                    // root's entry is already in `map`.
                    base: map[b as usize],
                    offset,
                    size,
                },
                k => k,
            };
            match base.obj_id(mapped_kind) {
                Some(id) => map.push(id),
                None => return fallback(),
            }
        }
        let value_pts: Vec<ObjSet> = pt
            .value_pts
            .iter()
            .map(|s| ObjSet {
                objects: s.objects.iter().map(|&o| map[o as usize]).collect(),
                unknown: s.unknown,
            })
            .collect();
        let stats = CtxStats {
            contexts: plan.ctx_keys.iter().map(Vec::len).sum(),
            cloned_nodes: plan.total,
            fallback: false,
        };
        CtxPointsTo {
            data: Some(CtxData { plan, value_pts }),
            stats,
        }
    }

    /// Whether the solve degraded to the insensitive relation.
    pub fn is_fallback(&self) -> bool {
        self.data.is_none()
    }

    /// Solver counters for profiling surfaces.
    pub fn stats(&self) -> CtxStats {
        self.stats
    }

    /// Number of calling contexts of `f` (1 on fallback).
    pub fn num_contexts_of(&self, f: FuncId) -> usize {
        self.data.as_ref().map_or(1, |d| d.plan.nctx(f))
    }

    /// Points-to set of `v` in calling context `ctx` of `f`, in the base
    /// relation's object ids. `None` when the solve fell back — callers
    /// must use the base relation's set instead.
    pub fn points_to_in(&self, f: FuncId, ctx: usize, v: ValueId) -> Option<&ObjSet> {
        let d = self.data.as_ref()?;
        Some(&d.value_pts[d.plan.node(f, ctx, v)])
    }

    /// The inter-SCC callsite `(caller, call value)` that selects context
    /// `ctx` of `f`; `None` for the root context or on fallback.
    pub fn ctx_callsite(&self, f: FuncId, ctx: usize) -> Option<(FuncId, ValueId)> {
        match self.data.as_ref()?.plan.key(f, ctx) {
            CtxKey::Root => None,
            CtxKey::Site(c, s) => Some((c, s)),
        }
    }

    /// Union of `v`'s sets over every context of `f` — the context-
    /// insensitive projection. Must be ⊆ the base relation's set (the
    /// refinement property the soundness tests assert suite-wide).
    pub fn projected(&self, f: FuncId, v: ValueId) -> Option<ObjSet> {
        let d = self.data.as_ref()?;
        let mut out = ObjSet::default();
        for ctx in 0..d.plan.nctx(f) {
            out.merge(&d.value_pts[d.plan.node(f, ctx, v)]);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CastKind, FunctionBuilder, Module, Ty};

    #[test]
    fn alloca_points_to_its_object() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let p = b.alloca(Ty::I64);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        let pts = pt.points_to(fid, p);
        assert_eq!(pts.objects.len(), 1);
        let o = *pts.objects.iter().next().unwrap();
        assert_eq!(
            pt.obj_kind(o),
            MemObjectKind::Stack {
                func: fid,
                value: p
            }
        );
    }

    #[test]
    fn pointer_stored_then_loaded_aliases_original() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let x = b.alloca(Ty::I64); // object X
        let pp = b.alloca(Ty::ptr(Ty::I64)); // pointer slot
        b.store(x, pp);
        let loaded = b.load(pp);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, loaded), (fid, x)));
        assert!(!pt.may_alias((fid, pp), (fid, x)));
    }

    #[test]
    fn gep_keeps_base_object() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        let i = b.const_i64(3);
        let p = b.gep(buf, i);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, p), (fid, buf)));
    }

    #[test]
    fn inttoptr_is_top() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let x = b.const_i64(0x1000);
        let p = b.cast(CastKind::IntToPtr, x, Ty::ptr(Ty::I64));
        let other = b.alloca(Ty::I64);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.points_to(fid, p).unknown);
        // ⊤ may alias any real object.
        assert!(pt.may_alias((fid, p), (fid, other)));
        assert!(pt.write_targets(fid, p).is_none());
    }

    #[test]
    fn malloc_sites_are_distinct_objects() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let n = b.const_i64(32);
        let h1 = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I8));
        let h2 = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I8));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(!pt.may_alias((fid, h1), (fid, h2)));
        assert!(matches!(
            pt.obj_kind(*pt.points_to(fid, h1).objects.iter().next().unwrap()),
            MemObjectKind::Heap { .. }
        ));
    }

    #[test]
    fn interprocedural_arg_flow() {
        let mut m = Module::new("m");
        // callee(p) { return p; }
        let mut cb = FunctionBuilder::new("callee", vec![Ty::ptr(Ty::I64)], Ty::ptr(Ty::I64));
        let p = cb.func().arg(0);
        cb.ret(Some(p));
        let callee = m.add_function(cb.finish());
        // caller: x = alloca; r = callee(x)
        let mut b = FunctionBuilder::new("caller", vec![], Ty::Void);
        let x = b.alloca(Ty::I64);
        let r = b.call(callee, vec![x], Ty::ptr(Ty::I64));
        b.ret(None);
        let caller = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((caller, r), (caller, x)));
        // The callee's parameter also points at the caller's alloca.
        let pf = m.func(callee).arg(0);
        assert!(pt.may_alias((callee, pf), (caller, x)));
    }

    #[test]
    fn indirect_call_links_address_taken_functions() {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("target", vec![Ty::ptr(Ty::I64)], Ty::Void);
        cb.ret(None);
        let target = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("caller", vec![], Ty::Void);
        let x = b.alloca(Ty::I64);
        let fp = b.func_addr(target);
        b.call_indirect(fp, vec![x], Ty::Void);
        b.ret(None);
        let caller = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        let param = m.func(target).arg(0);
        assert!(pt.may_alias((target, param), (caller, x)));
    }

    #[test]
    fn global_objects_aliased_via_address() {
        let mut m = Module::new("m");
        let g = m.add_str_global("msg", "hi");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let ga1 = b.global_addr(g, Ty::array(Ty::I8, 3));
        let ga2 = b.global_addr(g, Ty::array(Ty::I8, 3));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, ga1), (fid, ga2)));
    }

    #[test]
    fn strcpy_returns_destination() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let dst = b.alloca(Ty::array(Ty::I8, 8));
        let src = b.alloca(Ty::array(Ty::I8, 8));
        let r = b.call_intrinsic(Intrinsic::Strcpy, vec![dst, src], Ty::ptr(Ty::I8));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, r), (fid, dst)));
        assert!(!pt.may_alias((fid, r), (fid, src)));
    }

    /// Build `f() { s = alloca {i64, [16 x i8], i64}; p0 = &s.0; p1 = &s.1;
    /// p2 = &s.2; }` and return (module, fid, s, p0, p1, p2).
    fn struct_module() -> (Module, FuncId, ValueId, ValueId, ValueId, ValueId) {
        let mut m = Module::new("m");
        let st = Ty::strukt(vec![Ty::I64, Ty::array(Ty::I8, 16), Ty::I64]);
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let s = b.alloca(st);
        let p0 = b.field_addr(s, 0);
        let p1 = b.field_addr(s, 1);
        let p2 = b.field_addr(s, 2);
        b.ret(None);
        let fid = m.add_function(b.finish());
        (m, fid, s, p0, p1, p2)
    }

    #[test]
    fn field_addrs_split_struct_objects() {
        let (m, fid, s, p0, p1, p2) = struct_module();
        let pt = PointsTo::analyze(&m);
        // Disjoint sibling fields do not alias each other...
        assert!(!pt.may_alias((fid, p0), (fid, p1)));
        assert!(!pt.may_alias((fid, p0), (fid, p2)));
        assert!(!pt.may_alias((fid, p1), (fid, p2)));
        // ...but every field aliases the whole-struct pointer.
        for p in [p0, p1, p2] {
            assert!(pt.may_alias((fid, p), (fid, s)));
        }
        assert_eq!(pt.num_field_objects(), 3);
        // The field objects coarsen back to the alloca's root object.
        let root = pt
            .obj_id(MemObjectKind::Stack {
                func: fid,
                value: s,
            })
            .unwrap();
        for p in [p0, p1, p2] {
            let o = *pt.points_to(fid, p).objects.iter().next().unwrap();
            assert!(pt.obj_kind(o).is_field());
            assert_eq!(pt.base_object(o), root);
        }
    }

    #[test]
    fn field_insensitive_mode_collapses_fields() {
        let (m, fid, s, p0, p1, _) = struct_module();
        let pt = PointsTo::analyze_with(&m, Precision::FieldInsensitive);
        assert!(pt.may_alias((fid, p0), (fid, p1)));
        assert!(pt.may_alias((fid, p0), (fid, s)));
        assert_eq!(pt.num_field_objects(), 0);
    }

    #[test]
    fn root_object_ids_stable_across_precisions() {
        let (m, fid, s, _, _, _) = struct_module();
        let fs = PointsTo::analyze(&m);
        let fi = PointsTo::analyze_with(&m, Precision::FieldInsensitive);
        let kind = MemObjectKind::Stack {
            func: fid,
            value: s,
        };
        assert_eq!(fs.obj_id(kind), fi.obj_id(kind));
        // Every field-insensitive object exists at the same id in the
        // sensitive relation (fields are appended strictly after).
        assert_eq!(fi.objects(), &fs.objects()[..fi.num_objects()]);
    }

    #[test]
    fn nested_field_addr_accumulates_offsets() {
        let mut m = Module::new("m");
        let inner = Ty::strukt(vec![Ty::I64, Ty::I64]);
        let outer = Ty::strukt(vec![Ty::I64, inner]);
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let s = b.alloca(outer);
        let pi = b.field_addr(s, 1); // &s.1 (inner struct at offset 8)
        let pii = b.field_addr(pi, 1); // &s.1.1 (offset 16)
        let p0 = b.field_addr(s, 0); // &s.0 (offset 0)
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        let o = *pt.points_to(fid, pii).objects.iter().next().unwrap();
        assert_eq!(pt.field_extent(o), Some((16, 8)));
        // The nested leaf does not alias the disjoint first field, but does
        // alias its containing inner-struct pointer.
        assert!(!pt.may_alias((fid, pii), (fid, p0)));
        assert!(pt.may_alias((fid, pii), (fid, pi)));
    }

    #[test]
    fn stores_via_field_visible_to_base_loads() {
        let mut m = Module::new("m");
        let st = Ty::strukt(vec![Ty::ptr(Ty::I64)]);
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let x = b.alloca(Ty::I64);
        let s = b.alloca(st);
        let f0 = b.field_addr(s, 0);
        b.store(x, f0); // store &x through the field pointer
        let ld = b.load(s); // load through the base pointer
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        // The base-pointer load must still see the field-stored pointer.
        assert!(pt.may_alias((fid, ld), (fid, x)));
    }

    #[test]
    fn field_addr_on_heap_falls_back_to_base() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let n = b.const_i64(16);
        let h = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I8));
        let p0 = b.field_addr(h, 0);
        let p1 = b.field_addr(h, 1);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        // No layout for heap sites: both field pointers keep the site object.
        assert!(pt.may_alias((fid, p0), (fid, p1)));
        assert_eq!(pt.num_field_objects(), 0);
    }

    #[test]
    fn sensitive_relation_refines_insensitive() {
        // may_alias must never gain pairs when sharpening the precision.
        let (m, fid, _, _, _, _) = struct_module();
        let fs = PointsTo::analyze(&m);
        let fi = PointsTo::analyze_with(&m, Precision::FieldInsensitive);
        let f = m.func(fid);
        for a in f.value_ids() {
            for bv in f.value_ids() {
                if fs.may_alias((fid, a), (fid, bv)) {
                    assert!(
                        fi.may_alias((fid, a), (fid, bv)),
                        "field-sensitive gained alias pair ({a}, {bv})"
                    );
                }
            }
        }
    }

    /// callee `id(p) = p` called from two sites with distinct allocas.
    fn two_caller_module() -> (Module, FuncId, FuncId, ValueId, ValueId, ValueId, ValueId) {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("id", vec![Ty::ptr(Ty::I64)], Ty::ptr(Ty::I64));
        let p = cb.func().arg(0);
        cb.ret(Some(p));
        let id = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("caller", vec![], Ty::Void);
        let x = b.alloca(Ty::I64);
        let y = b.alloca(Ty::I64);
        let rx = b.call(id, vec![x], Ty::ptr(Ty::I64));
        let ry = b.call(id, vec![y], Ty::ptr(Ty::I64));
        b.ret(None);
        let caller = m.add_function(b.finish());
        (m, id, caller, x, y, rx, ry)
    }

    #[test]
    fn ctx_sensitive_params_split_per_callsite() {
        let (m, id, caller, x, y, rx, ry) = two_caller_module();
        let base = PointsTo::analyze(&m);
        let ctx = CtxPointsTo::analyze(&m, &base);
        assert!(!ctx.is_fallback());
        let pf = m.func(id).arg(0);
        // Insensitive: one summary conflates both callers' allocas.
        assert_eq!(base.points_to(id, pf).objects.len(), 2);
        assert_eq!(base.points_to(caller, rx).objects.len(), 2);
        // 1-CFA: one context per callsite, each seeing only its argument.
        assert_eq!(ctx.num_contexts_of(id), 2);
        let xo = *base.points_to(caller, x).objects.iter().next().unwrap();
        let yo = *base.points_to(caller, y).objects.iter().next().unwrap();
        for ci in 0..2 {
            let (cf, site) = ctx.ctx_callsite(id, ci).expect("non-root context");
            assert_eq!(cf, caller);
            assert!(site == rx || site == ry);
            let pts = ctx.points_to_in(id, ci, pf).unwrap();
            let want = if site == rx { xo } else { yo };
            assert_eq!(pts.objects.iter().copied().collect::<Vec<_>>(), vec![want]);
        }
        // The call results in the caller's (root) context also split.
        let root = 0;
        assert_eq!(ctx.num_contexts_of(caller), 1);
        assert_eq!(
            ctx.points_to_in(caller, root, rx)
                .unwrap()
                .objects
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![xo]
        );
        // Projection over all contexts refines the insensitive relation.
        let proj = ctx.projected(id, pf).unwrap();
        assert!(proj.objects.is_subset(&base.points_to(id, pf).objects));
    }

    #[test]
    fn ctx_recursive_scc_collapses_and_stays_sound() {
        let mut m = Module::new("m");
        // rec(p) { rec(p); return p; } — a one-function SCC. The FuncId is
        // predictable: first function added to the module.
        let rec_id = FuncId(0);
        let mut cb = FunctionBuilder::new("rec", vec![Ty::ptr(Ty::I64)], Ty::ptr(Ty::I64));
        let p = cb.func().arg(0);
        let _inner = cb.call(rec_id, vec![p], Ty::ptr(Ty::I64));
        cb.ret(Some(p));
        assert_eq!(m.add_function(cb.finish()), rec_id);
        let mut b = FunctionBuilder::new("caller", vec![], Ty::Void);
        let x = b.alloca(Ty::I64);
        let y = b.alloca(Ty::I64);
        let rx = b.call(rec_id, vec![x], Ty::ptr(Ty::I64));
        let _ry = b.call(rec_id, vec![y], Ty::ptr(Ty::I64));
        b.ret(None);
        let caller = m.add_function(b.finish());
        let base = PointsTo::analyze(&m);
        let ctx = CtxPointsTo::analyze(&m, &base);
        // The recursive self-call inherits its caller's context instead of
        // spawning new ones: exactly the two external sites remain.
        assert!(!ctx.is_fallback());
        assert_eq!(ctx.num_contexts_of(rec_id), 2);
        // Still sound (⊆ insensitive) and still precise per context.
        let proj = ctx.projected(rec_id, p).unwrap();
        assert!(proj.objects.is_subset(&base.points_to(rec_id, p).objects));
        let xo = *base.points_to(caller, x).objects.iter().next().unwrap();
        assert_eq!(
            ctx.points_to_in(caller, 0, rx)
                .unwrap()
                .objects
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![xo]
        );
    }

    #[test]
    fn ctx_budget_exhaustion_falls_back_to_insensitive() {
        let (m, id, _, _, _, _, _) = two_caller_module();
        let base = PointsTo::analyze(&m);
        let ctx = CtxPointsTo::analyze_with_budget(&m, &base, 1);
        assert!(ctx.is_fallback());
        assert!(ctx.stats().fallback);
        assert_eq!(ctx.num_contexts_of(id), 1);
        assert!(ctx.points_to_in(id, 0, m.func(id).arg(0)).is_none());
        assert!(ctx.projected(id, m.func(id).arg(0)).is_none());
        assert!(ctx.ctx_callsite(id, 0).is_none());
    }
}
