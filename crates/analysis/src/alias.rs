//! Module-wide, inclusion-based (Andersen-style) points-to analysis.
//!
//! The paper's algorithms lean on alias analysis in three places: branch
//! decomposition must follow data flow *through memory* (a load's value
//! comes from the stores that may write the same object), the CPA scheme
//! must find may-aliases of signed variables (Alg. 2), and interprocedural
//! overflow handling checks whether pointer arguments may point at
//! vulnerable variables (§4.4).
//!
//! The analysis is field-insensitive and context-insensitive, which matches
//! the LLVM `basic-aa`/`globals-aa` pipeline the paper uses closely enough
//! for the shapes we reproduce. `inttoptr` (pointer forging, paper §3.1)
//! poisons a value with the ⊤ ("unknown") marker, which the clients treat
//! as may-alias-anything.

use pythia_ir::{Callee, FuncId, GlobalId, Inst, Intrinsic, Module, ValueId, ValueKind};
use std::collections::{BTreeSet, HashMap};

/// What an abstract memory object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemObjectKind {
    /// A stack slot: `alloca` instruction `value` in function `func`.
    Stack {
        /// Owning function.
        func: FuncId,
        /// The alloca instruction's value id.
        value: ValueId,
    },
    /// A module global.
    Global(GlobalId),
    /// A heap allocation site: the allocating call `value` in `func`.
    Heap {
        /// Function containing the allocation site.
        func: FuncId,
        /// The call instruction's value id.
        value: ValueId,
    },
}

/// Index of an abstract object in [`PointsTo::objects`].
pub type ObjId = u32;

/// A points-to set: a set of abstract objects, possibly widened to ⊤.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjSet {
    /// Concrete objects.
    pub objects: BTreeSet<ObjId>,
    /// ⊤ marker: may point anywhere (set by `inttoptr` and its flows).
    pub unknown: bool,
}

impl ObjSet {
    /// Union `other` into `self`; returns whether anything changed.
    pub fn merge(&mut self, other: &ObjSet) -> bool {
        let before = self.objects.len();
        self.objects.extend(other.objects.iter().copied());
        let mut changed = self.objects.len() != before;
        if other.unknown && !self.unknown {
            self.unknown = true;
            changed = true;
        }
        changed
    }

    /// Whether the set is empty and not ⊤.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty() && !self.unknown
    }

    /// May this set and `other` refer to a common object?
    pub fn may_overlap(&self, other: &ObjSet) -> bool {
        if (self.unknown && !other.is_empty()) || (other.unknown && !self.is_empty()) {
            return true;
        }
        if self.unknown && other.unknown {
            return true;
        }
        self.objects.intersection(&other.objects).next().is_some()
    }
}

/// Result of the points-to analysis.
#[derive(Debug, Clone)]
pub struct PointsTo {
    objects: Vec<MemObjectKind>,
    obj_index: HashMap<MemObjectKind, ObjId>,
    /// pts for each value node.
    value_pts: Vec<ObjSet>,
    /// pts of each object's *memory* (what stored pointers may point to).
    mem_pts: Vec<ObjSet>,
    /// node numbering
    value_base: Vec<u32>,
}

impl PointsTo {
    fn node(&self, func: FuncId, value: ValueId) -> usize {
        (self.value_base[func.0 as usize] + value.0) as usize
    }

    /// All abstract objects discovered.
    pub fn objects(&self) -> &[MemObjectKind] {
        &self.objects
    }

    /// Object id for a kind, if it exists.
    pub fn obj_id(&self, kind: MemObjectKind) -> Option<ObjId> {
        self.obj_index.get(&kind).copied()
    }

    /// Object kind by id.
    pub fn obj_kind(&self, id: ObjId) -> MemObjectKind {
        self.objects[id as usize]
    }

    /// Points-to set of value `value` in `func`.
    pub fn points_to(&self, func: FuncId, value: ValueId) -> &ObjSet {
        &self.value_pts[self.node(func, value)]
    }

    /// What the memory of object `obj` may point to.
    pub fn memory_points_to(&self, obj: ObjId) -> &ObjSet {
        &self.mem_pts[obj as usize]
    }

    /// May two pointer values alias (refer to overlapping objects)?
    pub fn may_alias(&self, a: (FuncId, ValueId), b: (FuncId, ValueId)) -> bool {
        self.points_to(a.0, a.1)
            .may_overlap(self.points_to(b.0, b.1))
    }

    /// Objects a store through `ptr` may write. `None` means ⊤ (anything).
    pub fn write_targets(&self, func: FuncId, ptr: ValueId) -> Option<Vec<ObjId>> {
        let pts = self.points_to(func, ptr);
        if pts.unknown {
            None
        } else {
            Some(pts.objects.iter().copied().collect())
        }
    }

    /// Run the analysis over a module.
    pub fn analyze(m: &Module) -> Self {
        Builder::new(m).solve()
    }
}

/// Constraint kinds gathered from the IR.
#[derive(Debug, Clone, Copy)]
enum Constraint {
    /// `pts(dst) ⊇ pts(src)`
    Copy { src: usize, dst: usize },
    /// `pts(dst) ⊇ mem(o)` for each `o ∈ pts(ptr)`
    Load { ptr: usize, dst: usize },
    /// `mem(o) ⊇ pts(src)` for each `o ∈ pts(ptr)`
    Store { ptr: usize, src: usize },
}

struct Builder<'m> {
    m: &'m Module,
    pt: PointsTo,
    constraints: Vec<Constraint>,
    address_taken: Vec<FuncId>,
}

impl<'m> Builder<'m> {
    fn new(m: &'m Module) -> Self {
        // Number value nodes.
        let mut value_base = Vec::with_capacity(m.functions().len());
        let mut total = 0u32;
        for f in m.functions() {
            value_base.push(total);
            total += f.num_values() as u32;
        }
        let pt = PointsTo {
            objects: Vec::new(),
            obj_index: HashMap::new(),
            value_pts: vec![ObjSet::default(); total as usize],
            mem_pts: Vec::new(),
            value_base,
        };
        Builder {
            m,
            pt,
            constraints: Vec::new(),
            address_taken: Vec::new(),
        }
    }

    fn intern_obj(&mut self, kind: MemObjectKind) -> ObjId {
        if let Some(&id) = self.pt.obj_index.get(&kind) {
            return id;
        }
        let id = self.pt.objects.len() as ObjId;
        self.pt.objects.push(kind);
        self.pt.obj_index.insert(kind, id);
        self.pt.mem_pts.push(ObjSet::default());
        id
    }

    fn seed(&mut self, node: usize, obj: ObjId) {
        self.pt.value_pts[node].objects.insert(obj);
    }

    fn seed_unknown(&mut self, node: usize) {
        self.pt.value_pts[node].unknown = true;
    }

    fn gather(&mut self) {
        // Pre-create global objects.
        for g in self.m.global_ids() {
            self.intern_obj(MemObjectKind::Global(g));
        }
        // Collect address-taken functions for indirect-call resolution.
        for fid in self.m.func_ids() {
            let f = self.m.func(fid);
            for v in f.value_ids() {
                if let ValueKind::FuncAddr(target) = f.value(v).kind {
                    if !self.address_taken.contains(&target) {
                        self.address_taken.push(target);
                    }
                }
            }
        }

        for fid in self.m.func_ids() {
            let f = self.m.func(fid);
            for v in f.value_ids() {
                let node = self.pt.node(fid, v);
                match &f.value(v).kind {
                    ValueKind::GlobalAddr(g) => {
                        let o = self.intern_obj(MemObjectKind::Global(*g));
                        self.seed(node, o);
                    }
                    ValueKind::Inst(inst) => self.gather_inst(fid, v, node, inst),
                    _ => {}
                }
            }
        }
    }

    fn gather_inst(&mut self, fid: FuncId, v: ValueId, node: usize, inst: &Inst) {
        match inst {
            Inst::Alloca { .. } => {
                let o = self.intern_obj(MemObjectKind::Stack {
                    func: fid,
                    value: v,
                });
                self.seed(node, o);
            }
            Inst::Load { ptr } => {
                let p = self.pt.node(fid, *ptr);
                self.constraints
                    .push(Constraint::Load { ptr: p, dst: node });
            }
            Inst::Store { ptr, value } => {
                let p = self.pt.node(fid, *ptr);
                let s = self.pt.node(fid, *value);
                self.constraints.push(Constraint::Store { ptr: p, src: s });
            }
            Inst::Gep { base, .. } | Inst::FieldAddr { base, .. } => {
                let b = self.pt.node(fid, *base);
                self.constraints
                    .push(Constraint::Copy { src: b, dst: node });
            }
            Inst::Bin { lhs, rhs, .. } => {
                // Pointer arithmetic through integer ops keeps the base
                // objects (conservative: union both sides).
                for s in [lhs, rhs] {
                    let sn = self.pt.node(fid, *s);
                    self.constraints
                        .push(Constraint::Copy { src: sn, dst: node });
                }
            }
            Inst::Cast { kind, value, .. } => {
                use pythia_ir::CastKind;
                let sn = self.pt.node(fid, *value);
                match kind {
                    CastKind::IntToPtr => {
                        // Forged pointer: ⊤, but also keep whatever the
                        // integer was carrying (ptrtoint round trips).
                        self.seed_unknown(node);
                        self.constraints
                            .push(Constraint::Copy { src: sn, dst: node });
                    }
                    _ => {
                        self.constraints
                            .push(Constraint::Copy { src: sn, dst: node });
                    }
                }
            }
            Inst::Select {
                on_true, on_false, ..
            } => {
                for s in [on_true, on_false] {
                    let sn = self.pt.node(fid, *s);
                    self.constraints
                        .push(Constraint::Copy { src: sn, dst: node });
                }
            }
            Inst::Phi { incomings } => {
                for (_, s) in incomings {
                    let sn = self.pt.node(fid, *s);
                    self.constraints
                        .push(Constraint::Copy { src: sn, dst: node });
                }
            }
            Inst::PacSign { value, .. }
            | Inst::PacAuth { value, .. }
            | Inst::PacStrip { value } => {
                let sn = self.pt.node(fid, *value);
                self.constraints
                    .push(Constraint::Copy { src: sn, dst: node });
            }
            Inst::Call { callee, args } => self.gather_call(fid, v, node, callee, args),
            _ => {}
        }
    }

    fn gather_call(
        &mut self,
        fid: FuncId,
        v: ValueId,
        node: usize,
        callee: &Callee,
        args: &[ValueId],
    ) {
        match callee {
            Callee::Func(target) => self.link_call(fid, v, node, *target, args),
            Callee::Indirect(_) => {
                let candidates: Vec<FuncId> = self
                    .address_taken
                    .iter()
                    .copied()
                    .filter(|t| self.m.func(*t).params.len() == args.len())
                    .collect();
                for t in candidates {
                    self.link_call(fid, v, node, t, args);
                }
            }
            Callee::Intrinsic(i) => {
                if i.is_allocator() {
                    let o = self.intern_obj(MemObjectKind::Heap {
                        func: fid,
                        value: v,
                    });
                    self.seed(node, o);
                }
                match i {
                    // Channels that return their destination argument.
                    Intrinsic::Memcpy
                    | Intrinsic::Memmove
                    | Intrinsic::Strcpy
                    | Intrinsic::Strncpy
                    | Intrinsic::Sstrncpy
                    | Intrinsic::Strcat
                    | Intrinsic::Strncat
                    | Intrinsic::Fgets
                    | Intrinsic::Gets
                    | Intrinsic::Memset => {
                        if let Some(dst) = args.first() {
                            let sn = self.pt.node(fid, *dst);
                            self.constraints
                                .push(Constraint::Copy { src: sn, dst: node });
                        }
                    }
                    Intrinsic::Realloc => {
                        if let Some(old) = args.first() {
                            let sn = self.pt.node(fid, *old);
                            self.constraints
                                .push(Constraint::Copy { src: sn, dst: node });
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn link_call(
        &mut self,
        fid: FuncId,
        _v: ValueId,
        node: usize,
        target: FuncId,
        args: &[ValueId],
    ) {
        let callee = self.m.func(target);
        for (i, a) in args.iter().enumerate() {
            if i >= callee.params.len() {
                break;
            }
            let an = self.pt.node(fid, *a);
            let pn = self.pt.node(target, callee.arg(i));
            self.constraints.push(Constraint::Copy { src: an, dst: pn });
        }
        // Return values flow back to the call node.
        for bb in callee.block_ids() {
            if let Some(Inst::Ret { value: Some(rv) }) = callee.terminator(bb) {
                let rn = self.pt.node(target, *rv);
                self.constraints
                    .push(Constraint::Copy { src: rn, dst: node });
            }
        }
    }

    fn solve(mut self) -> PointsTo {
        self.gather();
        // Simple round-robin fixpoint; the constraint sets in generated
        // benchmarks are small enough (tens of thousands) that this
        // converges in a handful of rounds.
        let mut changed = true;
        while changed {
            changed = false;
            for ci in 0..self.constraints.len() {
                match self.constraints[ci] {
                    Constraint::Copy { src, dst } => {
                        if src == dst {
                            continue;
                        }
                        let (s, d) = get_two(&mut self.pt.value_pts, src, dst);
                        if d.merge(s) {
                            changed = true;
                        }
                    }
                    Constraint::Load { ptr, dst } => {
                        let objs: Vec<ObjId> =
                            self.pt.value_pts[ptr].objects.iter().copied().collect();
                        let ptr_unknown = self.pt.value_pts[ptr].unknown;
                        for o in objs {
                            let mem = self.pt.mem_pts[o as usize].clone();
                            if self.pt.value_pts[dst].merge(&mem) {
                                changed = true;
                            }
                        }
                        if ptr_unknown && !self.pt.value_pts[dst].unknown {
                            self.pt.value_pts[dst].unknown = true;
                            changed = true;
                        }
                    }
                    Constraint::Store { ptr, src } => {
                        let objs: Vec<ObjId> =
                            self.pt.value_pts[ptr].objects.iter().copied().collect();
                        let val = self.pt.value_pts[src].clone();
                        for o in objs {
                            if self.pt.mem_pts[o as usize].merge(&val) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        self.pt
    }
}

fn get_two<T>(v: &mut [T], a: usize, b: usize) -> (&T, &mut T) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CastKind, FunctionBuilder, Module, Ty};

    #[test]
    fn alloca_points_to_its_object() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let p = b.alloca(Ty::I64);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        let pts = pt.points_to(fid, p);
        assert_eq!(pts.objects.len(), 1);
        let o = *pts.objects.iter().next().unwrap();
        assert_eq!(
            pt.obj_kind(o),
            MemObjectKind::Stack {
                func: fid,
                value: p
            }
        );
    }

    #[test]
    fn pointer_stored_then_loaded_aliases_original() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let x = b.alloca(Ty::I64); // object X
        let pp = b.alloca(Ty::ptr(Ty::I64)); // pointer slot
        b.store(x, pp);
        let loaded = b.load(pp);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, loaded), (fid, x)));
        assert!(!pt.may_alias((fid, pp), (fid, x)));
    }

    #[test]
    fn gep_keeps_base_object() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        let i = b.const_i64(3);
        let p = b.gep(buf, i);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, p), (fid, buf)));
    }

    #[test]
    fn inttoptr_is_top() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let x = b.const_i64(0x1000);
        let p = b.cast(CastKind::IntToPtr, x, Ty::ptr(Ty::I64));
        let other = b.alloca(Ty::I64);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.points_to(fid, p).unknown);
        // ⊤ may alias any real object.
        assert!(pt.may_alias((fid, p), (fid, other)));
        assert!(pt.write_targets(fid, p).is_none());
    }

    #[test]
    fn malloc_sites_are_distinct_objects() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let n = b.const_i64(32);
        let h1 = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I8));
        let h2 = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I8));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(!pt.may_alias((fid, h1), (fid, h2)));
        assert!(matches!(
            pt.obj_kind(*pt.points_to(fid, h1).objects.iter().next().unwrap()),
            MemObjectKind::Heap { .. }
        ));
    }

    #[test]
    fn interprocedural_arg_flow() {
        let mut m = Module::new("m");
        // callee(p) { return p; }
        let mut cb = FunctionBuilder::new("callee", vec![Ty::ptr(Ty::I64)], Ty::ptr(Ty::I64));
        let p = cb.func().arg(0);
        cb.ret(Some(p));
        let callee = m.add_function(cb.finish());
        // caller: x = alloca; r = callee(x)
        let mut b = FunctionBuilder::new("caller", vec![], Ty::Void);
        let x = b.alloca(Ty::I64);
        let r = b.call(callee, vec![x], Ty::ptr(Ty::I64));
        b.ret(None);
        let caller = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((caller, r), (caller, x)));
        // The callee's parameter also points at the caller's alloca.
        let pf = m.func(callee).arg(0);
        assert!(pt.may_alias((callee, pf), (caller, x)));
    }

    #[test]
    fn indirect_call_links_address_taken_functions() {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("target", vec![Ty::ptr(Ty::I64)], Ty::Void);
        cb.ret(None);
        let target = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("caller", vec![], Ty::Void);
        let x = b.alloca(Ty::I64);
        let fp = b.func_addr(target);
        b.call_indirect(fp, vec![x], Ty::Void);
        b.ret(None);
        let caller = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        let param = m.func(target).arg(0);
        assert!(pt.may_alias((target, param), (caller, x)));
    }

    #[test]
    fn global_objects_aliased_via_address() {
        let mut m = Module::new("m");
        let g = m.add_str_global("msg", "hi");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let ga1 = b.global_addr(g, Ty::array(Ty::I8, 3));
        let ga2 = b.global_addr(g, Ty::array(Ty::I8, 3));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, ga1), (fid, ga2)));
    }

    #[test]
    fn strcpy_returns_destination() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let dst = b.alloca(Ty::array(Ty::I8, 8));
        let src = b.alloca(Ty::array(Ty::I8, 8));
        let r = b.call_intrinsic(Intrinsic::Strcpy, vec![dst, src], Ty::ptr(Ty::I8));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        assert!(pt.may_alias((fid, r), (fid, dst)));
        assert!(!pt.may_alias((fid, r), (fid, src)));
    }
}
