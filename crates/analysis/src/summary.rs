//! Summary-based k-CFA points-to solving with flow-sensitive strong
//! updates — the precision tier above the clone-based 1-CFA in
//! [`crate::alias`].
//!
//! # Why summaries
//!
//! The clone-based [`CtxPointsTo`] materializes one full Andersen node
//! space per `(function, context)` pair and solves the whole clone set
//! with a global round-robin pass. That is simple and sound, but the
//! cost is `cloned_nodes` — every extra context re-pays the entire
//! constraint graph, which is what makes k=2 unaffordable on bigger
//! modules. The summary solver instead gathers each function's
//! context-agnostic constraint list **once** (`LocalConstraint` in
//! `alias.rs` — shared verbatim with the clone builder, so the
//! per-instruction semantics are identical by construction) and
//! *instantiates* it per context on demand: a callsite composes the
//! caller's facts with the callee's parameterized summary instead of
//! cloning the callee's constraint graph. Bottom-up SCC order (from
//! [`CallGraph::sccs`]) seeds the worklist so most summaries converge
//! in one pass; re-enqueue registries (object readers, return watchers)
//! make the fixpoint demand-driven rather than global.
//!
//! # Context policies
//!
//! [`CtxPolicy`] selects the context abstraction:
//!
//! - `KCfa(k)`: call-string suffixes of length ≤ k, with callgraph-SCC
//!   collapse (an intra-SCC call inherits its caller's chain — the same
//!   collapse that keeps the clone-based 1-CFA finite).
//! - `ObjSensitive`: depth-1 object sensitivity — the context of a call
//!   is the abstract object its first pointer argument points to,
//!   falling back to the callsite when no argument has pointees.
//! - `OneCfaClone` / `Insensitive`: the existing engines, selectable so
//!   trend lines can compare policies on identical plumbing.
//!
//! All policies share the sound fall-back contract: if the planned node
//! space exceeds the budget, queries return `None` and callers use the
//! insensitive base relation (always a superset).
//!
//! # Strong updates
//!
//! A store through a pointer that *must* refer to a single, non-escaping
//! stack slot overwrites the whole cell, so earlier stores to that slot
//! whose values can never be observed again are dropped ("killed")
//! instead of accumulated. Kill eligibility is deliberately narrow (see
//! `strong_update_kills`): the slot must be a singleton must-alias
//! target (one abstract object, no field splits, count == 1), must not
//! escape (never stored to memory, passed to a call, returned, or seen
//! by another function), and every store to it must be through the
//! alloca's own value (a whole-cell must-overwrite, not a derived
//! pointer). The killed-store set is computed *before* solving from the
//! flow-insensitive base relation plus a [`ReachingStores`] liveness
//! walk, which keeps it solver-independent: the OPT-02 equivalence
//! check applies the same kills to both the summary worklist solve and
//! the direct reference solve, so equality is a statement about the
//! solving strategies, not the kill heuristic.

use crate::alias::{
    collect_address_taken, gather_function, CtxPointsTo, CtxStats, LocalConstraint, MemObjectKind,
    ObjId, ObjSet, PointsTo, CTX_NODE_BUDGET,
};
use crate::callgraph::CallGraph;
use crate::liveness::ReachingStores;
use pythia_ir::{Callee, FuncId, Inst, Module, Ty, ValueId, ValueKind};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Context abstraction of the layered points-to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxPolicy {
    /// No contexts: the insensitive base relation only.
    Insensitive,
    /// The clone-based 1-CFA engine from `alias.rs` (one context per
    /// inter-SCC callsite, whole-graph clones).
    OneCfaClone,
    /// Summary-based k-CFA: call-string suffixes of length ≤ k.
    KCfa(usize),
    /// Summary-based depth-1 object sensitivity.
    ObjSensitive,
}

impl CtxPolicy {
    /// Resolve the policy and node budget from the environment:
    /// `PYTHIA_CTX_POLICY` ∈ {`insensitive`, `1cfa`, `1cfa-summary`,
    /// `2cfa` (default), `3cfa`, `4cfa`, `objsens`} and
    /// `PYTHIA_CTX_BUDGET` (defaults to [`CTX_NODE_BUDGET`]).
    /// `PYTHIA_CTX_BUDGET=0` forces the insensitive relation regardless
    /// of the requested policy — and reporting surfaces must then label
    /// the run `insensitive`, not the requested name.
    pub fn from_env() -> (CtxPolicy, usize) {
        let budget = match std::env::var("PYTHIA_CTX_BUDGET") {
            Ok(s) => s.trim().parse::<usize>().unwrap_or(CTX_NODE_BUDGET),
            Err(_) => CTX_NODE_BUDGET,
        };
        if budget == 0 {
            return (CtxPolicy::Insensitive, 0);
        }
        let policy = match std::env::var("PYTHIA_CTX_POLICY").as_deref().map(str::trim) {
            Ok("insensitive") => CtxPolicy::Insensitive,
            Ok("1cfa") => CtxPolicy::OneCfaClone,
            Ok("1cfa-summary") | Ok("summary-1cfa") => CtxPolicy::KCfa(1),
            Ok("2cfa") | Ok("summary-2cfa") => CtxPolicy::KCfa(2),
            Ok("3cfa") => CtxPolicy::KCfa(3),
            Ok("4cfa") => CtxPolicy::KCfa(4),
            Ok("objsens") => CtxPolicy::ObjSensitive,
            _ => CtxPolicy::KCfa(2),
        };
        (policy, budget)
    }

    /// Canonical reporting name of the *requested* policy. Callers that
    /// fell back must report `"insensitive"` instead (see
    /// [`CtxSolve::policy_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            CtxPolicy::Insensitive => "insensitive",
            CtxPolicy::OneCfaClone => "1cfa",
            CtxPolicy::KCfa(1) => "summary-1cfa",
            CtxPolicy::KCfa(2) => "summary-2cfa",
            CtxPolicy::KCfa(3) => "summary-3cfa",
            CtxPolicy::KCfa(4) => "summary-4cfa",
            CtxPolicy::KCfa(_) => "summary-kcfa",
            CtxPolicy::ObjSensitive => "objsens",
        }
    }
}

/// One element of a calling-context chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CtxElem {
    /// An inter-SCC callsite `(caller, call value)`.
    Site(FuncId, ValueId),
    /// A receiver-object context (object sensitivity).
    Obj(ObjId),
}

/// A context chain, innermost callsite first. The empty chain is the
/// root (entry) context.
type Chain = Vec<CtxElem>;

/// The instantiation plan of a summary solve: which context chains each
/// function runs under, and where each `(function, chain)` instance
/// lives in the value-node space. Every member of a callgraph SCC
/// shares one chain list, so intra-SCC (recursive) calls inherit the
/// caller's context index directly.
#[derive(Debug, Clone)]
struct KPlan {
    policy: CtxPolicy,
    k: usize,
    scc_of: Vec<usize>,
    /// Sorted context chains per function (shared across its SCC).
    chains: Vec<Vec<Chain>>,
    /// Node-space base of each `(function, chain)` instance.
    bases: Vec<Vec<u32>>,
    /// Total value nodes across all instances.
    total: usize,
}

/// Context chain created by following the call edge `(caller, site)`
/// from `caller_chain`. Must be a pure function of the module and the
/// base relation — both the plan build and the solver call it and their
/// answers have to agree.
fn extend_chain(
    m: &Module,
    base: &PointsTo,
    policy: CtxPolicy,
    k: usize,
    caller: FuncId,
    site: ValueId,
    caller_chain: &[CtxElem],
) -> Chain {
    if policy == CtxPolicy::ObjSensitive {
        return vec![obj_elem(m, base, caller, site)];
    }
    let mut c = Vec::with_capacity(k);
    c.push(CtxElem::Site(caller, site));
    for e in caller_chain {
        if c.len() >= k {
            break;
        }
        c.push(*e);
    }
    c
}

/// Object-sensitive context element of a callsite: the smallest abstract
/// object the first pointee-carrying argument points to, falling back to
/// the callsite itself when no argument has pointees.
fn obj_elem(m: &Module, base: &PointsTo, caller: FuncId, site: ValueId) -> CtxElem {
    if let ValueKind::Inst(Inst::Call { args, .. }) = &m.func(caller).value(site).kind {
        for &a in args {
            if let Some(&o) = base.points_to(caller, a).objects.iter().next() {
                return CtxElem::Obj(o);
            }
        }
    }
    CtxElem::Site(caller, site)
}

impl KPlan {
    /// Build the plan, or `None` if the instantiated node space would
    /// exceed `budget` (the caller then falls back to the insensitive
    /// relation). Chains propagate callers-first over the condensation
    /// DAG: [`CallGraph::sccs`] returns components callees-first
    /// (reverse topological), so iterating the list backwards visits
    /// every caller SCC before any of its callees, and each SCC's chain
    /// set is complete by the time it propagates outward.
    fn build(m: &Module, base: &PointsTo, policy: CtxPolicy, budget: usize) -> Option<KPlan> {
        let k = match policy {
            CtxPolicy::KCfa(k) => k.max(1),
            CtxPolicy::ObjSensitive => 1,
            _ => return None,
        };
        let cg = CallGraph::build(m);
        let sccs = cg.sccs();
        let nf = m.functions().len();
        let mut scc_of = vec![0usize; nf];
        for (i, comp) in sccs.iter().enumerate() {
            for f in comp {
                scc_of[f.0 as usize] = i;
            }
        }
        // Inter-SCC call edges grouped by the caller's SCC. Indirect
        // calls resolve exactly like the constraint gatherer
        // (address-taken + arity match) so every Call edge the solver
        // follows has a chain to land in.
        let address_taken = collect_address_taken(m);
        let mut out_edges: Vec<Vec<(FuncId, ValueId, usize)>> = vec![Vec::new(); sccs.len()];
        for fid in m.func_ids() {
            let f = m.func(fid);
            for v in f.value_ids() {
                let ValueKind::Inst(Inst::Call { callee, args }) = &f.value(v).kind else {
                    continue;
                };
                let targets: Vec<FuncId> = match callee {
                    Callee::Func(t) => vec![*t],
                    Callee::Indirect(_) => address_taken
                        .iter()
                        .copied()
                        .filter(|t| m.func(*t).params.len() == args.len())
                        .collect(),
                    Callee::Intrinsic(_) => Vec::new(),
                };
                for t in targets {
                    let ts = scc_of[t.0 as usize];
                    if ts != scc_of[fid.0 as usize] {
                        out_edges[scc_of[fid.0 as usize]].push((fid, v, ts));
                    }
                }
            }
        }
        let mut chains_of_scc: Vec<BTreeSet<Chain>> = vec![BTreeSet::new(); sccs.len()];
        let mut running = 0usize;
        for si in (0..sccs.len()).rev() {
            if chains_of_scc[si].is_empty() {
                chains_of_scc[si].insert(Vec::new());
            }
            // Early bail-out on chain explosion before propagating further.
            let nchains = chains_of_scc[si].len();
            for f in &sccs[si] {
                running += nchains * m.func(*f).num_values();
                if running > budget {
                    return None;
                }
            }
            let caller_chains: Vec<Chain> = chains_of_scc[si].iter().cloned().collect();
            for &(caller, site, ts) in &out_edges[si] {
                debug_assert!(ts < si, "SCC order is not callees-first");
                for cc in &caller_chains {
                    let ext = extend_chain(m, base, policy, k, caller, site, cc);
                    chains_of_scc[ts].insert(ext);
                }
            }
        }
        let mut chains = vec![Vec::new(); nf];
        let mut bases = vec![Vec::new(); nf];
        let mut total = 0usize;
        for fid in m.func_ids() {
            let f = m.func(fid);
            let cs: Vec<Chain> = chains_of_scc[scc_of[fid.0 as usize]].iter().cloned().collect();
            let mut b = Vec::with_capacity(cs.len());
            for _ in &cs {
                b.push(total as u32);
                total += f.num_values();
                if total > budget {
                    return None;
                }
            }
            chains[fid.0 as usize] = cs;
            bases[fid.0 as usize] = b;
        }
        Some(KPlan {
            policy,
            k,
            scc_of,
            chains,
            bases,
            total,
        })
    }

    fn nctx(&self, f: FuncId) -> usize {
        self.chains[f.0 as usize].len()
    }

    fn node(&self, f: FuncId, ctx: usize, v: ValueId) -> usize {
        (self.bases[f.0 as usize][ctx] + v.0) as usize
    }

    /// Index of `chain` in `f`'s sorted chain list. By construction
    /// every chain the solver extends was inserted during the build; a
    /// miss is a plan/solver divergence bug.
    fn chain_index(&self, f: FuncId, chain: &Chain) -> usize {
        self.chains[f.0 as usize]
            .binary_search(chain)
            .expect("context chain missing from k-CFA plan")
    }
}

/// Compute the flow-sensitive strong-update kill set: store instructions
/// whose written cell is provably re-stored before any possible read, so
/// the solver may drop them entirely. Returned sorted.
///
/// A store `(f, s)` is killed only when its target slot `o` satisfies
/// **all** of:
///
/// 1. **Singleton must-alias**: `o` is a count-1 stack alloca of pointer
///    element type, with no field splits or overlapping siblings — so a
///    direct store overwrites the entire cell.
/// 2. **No escape**: `o` is never stored into memory, never passed as a
///    call argument (intrinsics included), never returned, and appears
///    in no other function's points-to sets — so no store or load
///    outside the walked function body can touch the cell.
/// 3. **Direct stores only**: every store with `o` in its pointer's
///    points-to set uses the alloca's own value as the pointer — a
///    derived pointer (gep/field/phi) could write a strict sub-extent,
///    which would not be a whole-cell must-overwrite.
/// 4. **Dead on every path**: per [`ReachingStores`] plus an in-block
///    walk, no load that may read `o` (including ⊤-pointer loads)
///    observes the store's value on any path.
///
/// The set is derived purely from the flow-insensitive base relation,
/// so it is independent of the context policy and of the solving
/// strategy — both the summary worklist solve and the OPT-02 reference
/// solve apply the identical kills.
pub(crate) fn strong_update_kills(m: &Module, base: &PointsTo) -> Vec<(FuncId, ValueId)> {
    // Candidate slots: pointer-typed, unsplit, count-1 stack allocas.
    let mut owner: BTreeMap<ObjId, (FuncId, ValueId)> = BTreeMap::new();
    for (i, kind) in base.objects().iter().enumerate() {
        let o = i as ObjId;
        let MemObjectKind::Stack { func, value } = *kind else {
            continue;
        };
        let Some(Inst::Alloca { elem, count }) = m.func(func).inst(value) else {
            continue;
        };
        if *count > 1 || !matches!(elem, Ty::Ptr(_)) {
            continue;
        }
        if base.overlapping_objects(o).len() != 1 {
            continue;
        }
        owner.insert(o, (func, value));
    }
    if owner.is_empty() {
        return Vec::new();
    }

    // Escape analysis over the base relation.
    let mut dead: BTreeSet<ObjId> = BTreeSet::new();
    for o in 0..base.num_objects() as ObjId {
        for &o2 in &base.memory_points_to(o).objects {
            if owner.contains_key(&o2) {
                dead.insert(o2);
            }
        }
    }
    for fid in m.func_ids() {
        let f = m.func(fid);
        for v in f.value_ids() {
            let pts = base.points_to(fid, v);
            if !pts.objects.is_empty() {
                for &o in &pts.objects {
                    if let Some(&(of, _)) = owner.get(&o) {
                        if of != fid {
                            dead.insert(o);
                        }
                    }
                }
            }
            match &f.value(v).kind {
                ValueKind::Inst(Inst::Call { args, .. }) => {
                    for &a in args {
                        for &o in &base.points_to(fid, a).objects {
                            if owner.contains_key(&o) {
                                dead.insert(o);
                            }
                        }
                    }
                }
                ValueKind::Inst(Inst::Store { ptr, .. }) => {
                    for &o in &base.points_to(fid, *ptr).objects {
                        if let Some(&(of, oa)) = owner.get(&o) {
                            if of != fid || *ptr != oa {
                                dead.insert(o);
                            }
                        }
                    }
                }
                ValueKind::Inst(Inst::Ret { value: Some(rv) }) => {
                    for &o in &base.points_to(fid, *rv).objects {
                        if owner.contains_key(&o) {
                            dead.insert(o);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Flow phase: a surviving slot's store is killed unless some load
    // that may read the slot observes it on any path.
    let mut killed: BTreeSet<(FuncId, ValueId)> = BTreeSet::new();
    let mut rs_cache: HashMap<FuncId, ReachingStores> = HashMap::new();
    for (&o, &(fid, a)) in owner.iter().filter(|(o, _)| !dead.contains(*o)) {
        let f = m.func(fid);
        let rs = rs_cache.entry(fid).or_insert_with(|| {
            ReachingStores::compute(f, |v| {
                let p = base.points_to(fid, v);
                if p.unknown {
                    // The solver's Store writes only concrete pointees; a
                    // ⊤ store defines nothing at the abstraction level.
                    Vec::new()
                } else {
                    p.objects.iter().copied().collect()
                }
            })
        });
        let mut live: HashSet<ValueId> = HashSet::new();
        let mut all_stores: Vec<ValueId> = Vec::new();
        for bb in f.block_ids() {
            let mut cur = rs.reaching(bb, o);
            for &iv in &f.block(bb).insts {
                match f.inst(iv) {
                    Some(Inst::Load { ptr }) => {
                        let p = base.points_to(fid, *ptr);
                        if p.unknown || p.objects.contains(&o) {
                            live.extend(cur.iter().copied());
                        }
                    }
                    Some(Inst::Store { ptr, .. }) if *ptr == a => {
                        all_stores.push(iv);
                        cur.clear();
                        cur.insert(iv);
                    }
                    _ => {}
                }
            }
        }
        for s in all_stores {
            if !live.contains(&s) {
                killed.insert((fid, s));
            }
        }
    }
    killed.into_iter().collect()
}

/// Gather every function's context-agnostic constraint list once.
fn gather_all(m: &Module, base: &PointsTo) -> Vec<Vec<LocalConstraint>> {
    let address_taken = collect_address_taken(m);
    m.func_ids()
        .map(|fid| gather_function(m, fid, base.precision(), &address_taken))
        .collect()
}

/// What one instance-processing pass changed, for re-enqueueing.
struct ProcessOut {
    /// Anything at all changed (drives the round-robin reference solve).
    any: bool,
    /// Memory objects whose pointee set grew (wake registered readers).
    touched: BTreeSet<ObjId>,
    /// Instances whose parameter nodes grew via a call edge.
    grew: BTreeSet<u32>,
    /// The instance's own return set grew since its last processing
    /// (wake registered return watchers).
    ret_grew: bool,
}

/// Shared state of one summary solve: the instantiated value-node space,
/// the global memory relation (in base object ids), and the demand
/// re-enqueue registries.
struct SolveState<'a> {
    m: &'a Module,
    base: &'a PointsTo,
    plan: &'a KPlan,
    locals: &'a [Vec<LocalConstraint>],
    killed: BTreeSet<(FuncId, ValueId)>,
    /// Per-instance value points-to sets (`plan.total` nodes), in the
    /// base relation's object ids.
    value_pts: Vec<ObjSet>,
    /// Memory pointee sets per base object (context-insensitive heap
    /// abstraction, like the clone engine's).
    mem: Vec<ObjSet>,
    /// Flat instance index → `(function, ctx)`.
    inst_of: Vec<(FuncId, usize)>,
    /// First flat instance index per function.
    inst_base: Vec<u32>,
    /// Instances that loaded through each object (woken when the
    /// object's memory set grows).
    obj_readers: Vec<BTreeSet<u32>>,
    /// Caller instances watching each instance's return set.
    ret_watchers: Vec<BTreeSet<u32>>,
    /// Returned value ids per function.
    ret_vals: Vec<Vec<ValueId>>,
    /// Last observed `(len, unknown)` of each instance's return nodes,
    /// persisted across processings so growth via a caller-pushed
    /// parameter node (an identity function returning its argument) is
    /// still detected and propagated to the other callers.
    ret_seen: Vec<Vec<(usize, bool)>>,
}

impl<'a> SolveState<'a> {
    fn new(
        m: &'a Module,
        base: &'a PointsTo,
        plan: &'a KPlan,
        locals: &'a [Vec<LocalConstraint>],
        killed: BTreeSet<(FuncId, ValueId)>,
    ) -> Self {
        let nf = m.functions().len();
        let mut inst_of = Vec::new();
        let mut inst_base = vec![0u32; nf];
        for fid in m.func_ids() {
            inst_base[fid.0 as usize] = inst_of.len() as u32;
            for ctx in 0..plan.nctx(fid) {
                inst_of.push((fid, ctx));
            }
        }
        let mut ret_vals = vec![Vec::new(); nf];
        for fid in m.func_ids() {
            let f = m.func(fid);
            for bb in f.block_ids() {
                if let Some(Inst::Ret { value: Some(rv) }) = f.terminator(bb) {
                    ret_vals[fid.0 as usize].push(*rv);
                }
            }
        }
        let ret_seen = inst_of
            .iter()
            .map(|&(fid, _)| vec![(0usize, false); ret_vals[fid.0 as usize].len()])
            .collect();
        let ninst = inst_of.len();
        SolveState {
            m,
            base,
            plan,
            locals,
            killed,
            value_pts: vec![ObjSet::default(); plan.total],
            mem: vec![ObjSet::default(); base.num_objects()],
            inst_of,
            inst_base,
            obj_readers: vec![BTreeSet::new(); base.num_objects()],
            ret_watchers: vec![BTreeSet::new(); ninst],
            ret_vals,
            ret_seen,
        }
    }

    fn instance(&self, f: FuncId, ctx: usize) -> u32 {
        self.inst_base[f.0 as usize] + ctx as u32
    }

    /// Run `(fid, ctx)`'s constraint list to a local fixpoint,
    /// composing callee summaries at call edges.
    fn process(&mut self, ii: u32) -> ProcessOut {
        let (fid, ctx) = self.inst_of[ii as usize];
        // Copy the long-lived shared refs out so the loop below can
        // borrow `self` mutably.
        let m = self.m;
        let base = self.base;
        let plan = self.plan;
        let locals = self.locals;
        let lcs: &'a [LocalConstraint] = &locals[fid.0 as usize];
        let mut out = ProcessOut {
            any: false,
            touched: BTreeSet::new(),
            grew: BTreeSet::new(),
            ret_grew: false,
        };
        loop {
            let mut changed = false;
            for lc in lcs {
                match lc {
                    LocalConstraint::Copy { src, dst } => {
                        let (s, d) = (plan.node(fid, ctx, *src), plan.node(fid, ctx, *dst));
                        if s != d && merge_nodes(&mut self.value_pts, s, d) {
                            changed = true;
                        }
                    }
                    LocalConstraint::Load { ptr, dst } => {
                        let p = plan.node(fid, ctx, *ptr);
                        let d = plan.node(fid, ctx, *dst);
                        let objs: Vec<ObjId> =
                            self.value_pts[p].objects.iter().copied().collect();
                        let ptr_unknown = self.value_pts[p].unknown;
                        for o in objs {
                            for o2 in base.overlapping_objects(o) {
                                // Register as a reader *before* the read so
                                // any later growth of mem(o2) wakes us.
                                self.obj_readers[o2 as usize].insert(ii);
                                let mem = self.mem[o2 as usize].clone();
                                if self.value_pts[d].merge(&mem) {
                                    changed = true;
                                }
                            }
                        }
                        if ptr_unknown && !self.value_pts[d].unknown {
                            self.value_pts[d].unknown = true;
                            changed = true;
                        }
                    }
                    LocalConstraint::Store { inst, ptr, src } => {
                        if self.killed.contains(&(fid, *inst)) {
                            continue; // strong update: a later store must overwrite
                        }
                        let p = plan.node(fid, ctx, *ptr);
                        let s = plan.node(fid, ctx, *src);
                        let objs: Vec<ObjId> =
                            self.value_pts[p].objects.iter().copied().collect();
                        let val = self.value_pts[s].clone();
                        for o in objs {
                            if self.mem[o as usize].merge(&val) {
                                changed = true;
                                out.touched.insert(o);
                            }
                        }
                    }
                    LocalConstraint::FieldOf { base: b, dst, field } => {
                        let bn = plan.node(fid, ctx, *b);
                        let d = plan.node(fid, ctx, *dst);
                        let objs: Vec<ObjId> =
                            self.value_pts[bn].objects.iter().copied().collect();
                        let base_unknown = self.value_pts[bn].unknown;
                        for o in objs {
                            let target = base.resolve_field(o, *field).unwrap_or(o);
                            if self.value_pts[d].objects.insert(target) {
                                changed = true;
                            }
                        }
                        if base_unknown && !self.value_pts[d].unknown {
                            self.value_pts[d].unknown = true;
                            changed = true;
                        }
                    }
                    LocalConstraint::Seed { dst, kind, .. } => {
                        let o = base
                            .obj_id(*kind)
                            .expect("summary seed object missing from base relation");
                        let d = plan.node(fid, ctx, *dst);
                        if self.value_pts[d].objects.insert(o) {
                            changed = true;
                        }
                    }
                    LocalConstraint::SeedUnknown { dst } => {
                        let d = plan.node(fid, ctx, *dst);
                        if !self.value_pts[d].unknown {
                            self.value_pts[d].unknown = true;
                            changed = true;
                        }
                    }
                    LocalConstraint::Call { site, target, args } => {
                        let tctx = if plan.scc_of[target.0 as usize]
                            == plan.scc_of[fid.0 as usize]
                        {
                            ctx // intra-SCC: inherit (shared chain list)
                        } else {
                            let ext = extend_chain(
                                m,
                                base,
                                plan.policy,
                                plan.k,
                                fid,
                                *site,
                                &plan.chains[fid.0 as usize][ctx],
                            );
                            plan.chain_index(*target, &ext)
                        };
                        let ti = self.instance(*target, tctx);
                        let tf = m.func(*target);
                        for (i, &a) in args.iter().enumerate() {
                            if i >= tf.params.len() {
                                break;
                            }
                            let s = plan.node(fid, ctx, a);
                            let d = plan.node(*target, tctx, tf.arg(i));
                            if s != d && merge_nodes(&mut self.value_pts, s, d) {
                                changed = true;
                                out.grew.insert(ti);
                            }
                        }
                        // Pull the callee's current return facts and watch
                        // for later growth.
                        self.ret_watchers[ti as usize].insert(ii);
                        let d = plan.node(fid, ctx, *site);
                        for rvi in 0..self.ret_vals[target.0 as usize].len() {
                            let rv = self.ret_vals[target.0 as usize][rvi];
                            let s = plan.node(*target, tctx, rv);
                            if s != d && merge_nodes(&mut self.value_pts, s, d) {
                                changed = true;
                            }
                        }
                    }
                }
            }
            if changed {
                out.any = true;
            } else {
                break;
            }
        }
        // Return-set growth since the last processing (however it got
        // there — local constraints or caller-pushed parameter nodes).
        for rvi in 0..self.ret_vals[fid.0 as usize].len() {
            let rv = self.ret_vals[fid.0 as usize][rvi];
            let s = &self.value_pts[self.plan.node(fid, ctx, rv)];
            let now = (s.objects.len(), s.unknown);
            if now != self.ret_seen[ii as usize][rvi] {
                self.ret_seen[ii as usize][rvi] = now;
                out.ret_grew = true;
                out.any = true;
            }
        }
        out
    }

    /// Demand-driven fixpoint: seed every instance callers-first (so
    /// parameter facts flow down in one sweep), then re-process only
    /// instances woken by memory growth, parameter growth, or return
    /// growth. The constraint system is monotone, so the worklist
    /// schedule reaches the same least fixpoint as any other order.
    fn run_worklist(&mut self) {
        let ninst = self.inst_of.len();
        let mut queue: VecDeque<u32> = VecDeque::with_capacity(ninst);
        let mut in_queue = vec![false; ninst];
        let cg = CallGraph::build(self.m);
        for scc in cg.sccs().iter().rev() {
            for &f in scc {
                for ctx in 0..self.plan.nctx(f) {
                    let ii = self.instance(f, ctx);
                    queue.push_back(ii);
                    in_queue[ii as usize] = true;
                }
            }
        }
        while let Some(ii) = queue.pop_front() {
            in_queue[ii as usize] = false;
            let out = self.process(ii);
            let mut wake: BTreeSet<u32> = BTreeSet::new();
            for o in &out.touched {
                wake.extend(self.obj_readers[*o as usize].iter().copied());
            }
            wake.extend(out.grew.iter().copied());
            if out.ret_grew {
                wake.extend(self.ret_watchers[ii as usize].iter().copied());
            }
            for w in wake {
                if !in_queue[w as usize] {
                    in_queue[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }

    /// Direct per-context reference solve: round-robin over every
    /// instance until nothing changes anywhere. No wake-up machinery to
    /// get wrong — the OPT-02 oracle the worklist solve is checked
    /// against.
    fn run_round_robin(&mut self) {
        let ninst = self.inst_of.len() as u32;
        loop {
            let mut any = false;
            for ii in 0..ninst {
                if self.process(ii).any {
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }
}

/// `dst ⊇ src` over a flat node slab; returns whether `dst` changed.
fn merge_nodes(v: &mut [ObjSet], src: usize, dst: usize) -> bool {
    debug_assert_ne!(src, dst);
    let (s, d) = if src < dst {
        let (lo, hi) = v.split_at_mut(dst);
        (&lo[src], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(src);
        (&hi[0], &mut lo[dst])
    };
    d.merge(s)
}

#[derive(Debug, Clone)]
struct SummaryData {
    plan: KPlan,
    value_pts: Vec<ObjSet>,
}

/// Summary-based context-sensitive points-to relation layered over the
/// insensitive base [`PointsTo`]. Speaks the base relation's [`ObjId`]s
/// directly (no remapping — object identities come from the base via
/// `obj_id`/`resolve_field`), so clients can mix per-context value sets
/// with base object metadata exactly like with [`CtxPointsTo`]. On
/// fallback the queries return `None` and callers must use the base
/// relation, which is always a sound superset.
#[derive(Debug, Clone)]
pub struct SummaryPointsTo {
    data: Option<SummaryData>,
    stats: CtxStats,
    summaries: usize,
    summary_reuse: usize,
    strong_updates: usize,
}

impl SummaryPointsTo {
    /// Run the summary solve for `policy` within `budget` value nodes.
    /// `base` must be the field-sensitive relation of the same module.
    pub fn analyze(m: &Module, base: &PointsTo, policy: CtxPolicy, budget: usize) -> Self {
        let fallback = || SummaryPointsTo {
            data: None,
            stats: CtxStats {
                contexts: m.functions().len(),
                cloned_nodes: 0,
                fallback: true,
            },
            summaries: 0,
            summary_reuse: 0,
            strong_updates: 0,
        };
        let Some(plan) = KPlan::build(m, base, policy, budget) else {
            return fallback();
        };
        let locals = gather_all(m, base);
        let killed: BTreeSet<(FuncId, ValueId)> =
            strong_update_kills(m, base).into_iter().collect();
        let strong_updates = killed.len();
        let mut st = SolveState::new(m, base, &plan, &locals, killed);
        st.run_worklist();
        let value_pts = std::mem::take(&mut st.value_pts);
        drop(st);
        // Composition-reuse accounting: every call-edge instantiation
        // binds a target summary instance; each binding beyond an
        // instance's first is a summary the clone engine would have
        // re-cloned.
        let mut edges = 0usize;
        let mut bound: BTreeSet<u32> = BTreeSet::new();
        let mut inst_base = vec![0u32; m.functions().len()];
        let mut acc = 0u32;
        for fid in m.func_ids() {
            inst_base[fid.0 as usize] = acc;
            acc += plan.nctx(fid) as u32;
        }
        for fid in m.func_ids() {
            for ctx in 0..plan.nctx(fid) {
                for lc in &locals[fid.0 as usize] {
                    let LocalConstraint::Call { site, target, .. } = lc else {
                        continue;
                    };
                    let tctx = if plan.scc_of[target.0 as usize] == plan.scc_of[fid.0 as usize] {
                        ctx
                    } else {
                        let ext = extend_chain(
                            m,
                            base,
                            plan.policy,
                            plan.k,
                            fid,
                            *site,
                            &plan.chains[fid.0 as usize][ctx],
                        );
                        plan.chain_index(*target, &ext)
                    };
                    edges += 1;
                    bound.insert(inst_base[target.0 as usize] + tctx as u32);
                }
            }
        }
        let stats = CtxStats {
            contexts: plan.chains.iter().map(Vec::len).sum(),
            cloned_nodes: plan.total,
            fallback: false,
        };
        SummaryPointsTo {
            summaries: m.functions().len(),
            summary_reuse: edges.saturating_sub(bound.len()),
            strong_updates,
            data: Some(SummaryData { plan, value_pts }),
            stats,
        }
    }

    /// Whether the solve degraded to the insensitive relation.
    pub fn is_fallback(&self) -> bool {
        self.data.is_none()
    }

    /// Solver counters for profiling surfaces.
    pub fn stats(&self) -> CtxStats {
        self.stats
    }

    /// Distinct per-function summaries gathered (0 on fallback).
    pub fn summaries(&self) -> usize {
        self.summaries
    }

    /// Call-edge instantiations served by an already-instantiated
    /// summary instead of a fresh constraint-graph clone.
    pub fn summary_reuse(&self) -> usize {
        self.summary_reuse
    }

    /// Store instructions dropped by flow-sensitive strong updates.
    pub fn strong_updates(&self) -> usize {
        self.strong_updates
    }

    /// Number of calling contexts of `f` (1 on fallback).
    pub fn num_contexts_of(&self, f: FuncId) -> usize {
        self.data.as_ref().map_or(1, |d| d.plan.nctx(f))
    }

    /// Points-to set of `v` in context `ctx` of `f`, in base object ids.
    /// `None` when the solve fell back.
    pub fn points_to_in(&self, f: FuncId, ctx: usize, v: ValueId) -> Option<&ObjSet> {
        let d = self.data.as_ref()?;
        Some(&d.value_pts[d.plan.node(f, ctx, v)])
    }

    /// The innermost callsite `(caller, call value)` of context `ctx` of
    /// `f`; `None` for the root context, an object context, or fallback.
    pub fn ctx_callsite(&self, f: FuncId, ctx: usize) -> Option<(FuncId, ValueId)> {
        match self.data.as_ref()?.plan.chains[f.0 as usize][ctx].first() {
            Some(CtxElem::Site(c, s)) => Some((*c, *s)),
            _ => None,
        }
    }

    /// The callsite chain of context `ctx` of `f`, innermost first,
    /// truncated at the first non-callsite element. Empty for the root
    /// context or on fallback.
    pub fn ctx_chain(&self, f: FuncId, ctx: usize) -> Vec<(FuncId, ValueId)> {
        let Some(d) = self.data.as_ref() else {
            return Vec::new();
        };
        d.plan.chains[f.0 as usize][ctx]
            .iter()
            .map_while(|e| match e {
                CtxElem::Site(c, s) => Some((*c, *s)),
                CtxElem::Obj(_) => None,
            })
            .collect()
    }

    /// Union of `v`'s sets over every context of `f` — the context-
    /// insensitive projection. Must be ⊆ the base relation's set.
    pub fn projected(&self, f: FuncId, v: ValueId) -> Option<ObjSet> {
        let d = self.data.as_ref()?;
        let mut out = ObjSet::default();
        for ctx in 0..d.plan.nctx(f) {
            out.merge(&d.value_pts[d.plan.node(f, ctx, v)]);
        }
        Some(out)
    }
}

/// OPT-02 witness: solve `m` twice under the same plan and kill set —
/// once with the demand-driven summary worklist, once with the direct
/// per-context round-robin reference — and compare every value node and
/// memory cell. `Some(true)` means the composed summaries equal the
/// direct solve; `None` means the module is not summary-solvable at
/// this policy/budget (non-summary policy, or the plan exceeds the
/// budget) and the check does not apply.
///
/// `mutation` seeds a deliberate fault for meta-testing the check
/// itself: `Some(n)` exempts the n-th (mod count) killed store from the
/// *worklist* side only, so a module where that kill matters must come
/// back `Some(false)`.
pub fn opt02_equivalence(
    m: &Module,
    base: &PointsTo,
    policy: CtxPolicy,
    budget: usize,
    mutation: Option<usize>,
) -> Option<bool> {
    let plan = KPlan::build(m, base, policy, budget)?;
    let locals = gather_all(m, base);
    let killed = strong_update_kills(m, base);
    let full: BTreeSet<(FuncId, ValueId)> = killed.iter().copied().collect();
    let mut mutated = full.clone();
    if let Some(n) = mutation {
        if !killed.is_empty() {
            mutated.remove(&killed[n % killed.len()]);
        }
    }
    let mut wl = SolveState::new(m, base, &plan, &locals, mutated);
    wl.run_worklist();
    let mut rr = SolveState::new(m, base, &plan, &locals, full);
    rr.run_round_robin();
    Some(wl.value_pts == rr.value_pts && wl.mem == rr.mem)
}

#[derive(Debug, Clone)]
enum Engine {
    Clone(CtxPointsTo),
    Summary(SummaryPointsTo),
}

/// Policy-selectable context-sensitive points-to facade: one type the
/// rest of the pipeline queries, backed by either the clone-based 1-CFA
/// engine or the summary-based k-CFA/object-sensitive solver. All
/// engines share the fall-back contract (queries return `None`, callers
/// use the insensitive base) and the reporting rule that a fallen-back
/// run labels itself `"insensitive"` whatever was requested.
#[derive(Debug, Clone)]
pub struct CtxSolve {
    engine: Engine,
    requested: CtxPolicy,
}

impl CtxSolve {
    /// Solve `m` under `policy` within `budget` value nodes.
    pub fn analyze(m: &Module, base: &PointsTo, policy: CtxPolicy, budget: usize) -> Self {
        let engine = match policy {
            CtxPolicy::Insensitive => Engine::Clone(CtxPointsTo::insensitive(m)),
            CtxPolicy::OneCfaClone => {
                Engine::Clone(CtxPointsTo::analyze_with_budget(m, base, budget))
            }
            CtxPolicy::KCfa(_) | CtxPolicy::ObjSensitive => {
                Engine::Summary(SummaryPointsTo::analyze(m, base, policy, budget))
            }
        };
        CtxSolve {
            engine,
            requested: policy,
        }
    }

    /// Solve under the environment-selected policy and budget
    /// ([`CtxPolicy::from_env`]).
    pub fn from_env(m: &Module, base: &PointsTo) -> Self {
        let (policy, budget) = CtxPolicy::from_env();
        Self::analyze(m, base, policy, budget)
    }

    /// The reporting label of this solve: the requested policy's name,
    /// except a fallen-back run always reports `"insensitive"` so trend
    /// lines never compare mislabeled rows.
    pub fn policy_name(&self) -> &'static str {
        if self.is_fallback() {
            return "insensitive";
        }
        self.requested.name()
    }

    /// Whether the solve degraded to the insensitive relation.
    pub fn is_fallback(&self) -> bool {
        match &self.engine {
            Engine::Clone(c) => c.is_fallback(),
            Engine::Summary(s) => s.is_fallback(),
        }
    }

    /// Solver counters for profiling surfaces.
    pub fn stats(&self) -> CtxStats {
        match &self.engine {
            Engine::Clone(c) => c.stats(),
            Engine::Summary(s) => s.stats(),
        }
    }

    /// Distinct per-function summaries gathered (0 for clone engines).
    pub fn summaries(&self) -> usize {
        match &self.engine {
            Engine::Clone(_) => 0,
            Engine::Summary(s) => s.summaries(),
        }
    }

    /// Call-edge instantiations served by an existing summary instance
    /// (0 for clone engines).
    pub fn summary_reuse(&self) -> usize {
        match &self.engine {
            Engine::Clone(_) => 0,
            Engine::Summary(s) => s.summary_reuse(),
        }
    }

    /// Stores dropped by flow-sensitive strong updates (0 for clone
    /// engines — only the summary solver kills).
    pub fn strong_updates(&self) -> usize {
        match &self.engine {
            Engine::Clone(_) => 0,
            Engine::Summary(s) => s.strong_updates(),
        }
    }

    /// Number of calling contexts of `f` (1 on fallback).
    pub fn num_contexts_of(&self, f: FuncId) -> usize {
        match &self.engine {
            Engine::Clone(c) => c.num_contexts_of(f),
            Engine::Summary(s) => s.num_contexts_of(f),
        }
    }

    /// Points-to set of `v` in context `ctx` of `f`, in base object ids;
    /// `None` on fallback.
    pub fn points_to_in(&self, f: FuncId, ctx: usize, v: ValueId) -> Option<&ObjSet> {
        match &self.engine {
            Engine::Clone(c) => c.points_to_in(f, ctx, v),
            Engine::Summary(s) => s.points_to_in(f, ctx, v),
        }
    }

    /// The innermost callsite selecting context `ctx` of `f`; `None` for
    /// root/object contexts or on fallback.
    pub fn ctx_callsite(&self, f: FuncId, ctx: usize) -> Option<(FuncId, ValueId)> {
        match &self.engine {
            Engine::Clone(c) => c.ctx_callsite(f, ctx),
            Engine::Summary(s) => s.ctx_callsite(f, ctx),
        }
    }

    /// The callsite chain of context `ctx` of `f`, innermost first (at
    /// most one element for the clone engine).
    pub fn ctx_chain(&self, f: FuncId, ctx: usize) -> Vec<(FuncId, ValueId)> {
        match &self.engine {
            Engine::Clone(c) => c.ctx_callsite(f, ctx).into_iter().collect(),
            Engine::Summary(s) => s.ctx_chain(f, ctx),
        }
    }

    /// Context-insensitive projection of `v`'s per-context sets; `None`
    /// on fallback.
    pub fn projected(&self, f: FuncId, v: ValueId) -> Option<ObjSet> {
        match &self.engine {
            Engine::Clone(c) => c.projected(f, v),
            Engine::Summary(s) => s.projected(f, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{FunctionBuilder, Module, Ty};

    /// h(p) returns p; w(p) returns h(p); f1 and f2 each pass their own
    /// alloca through w. 1-CFA gives h a single context (the one
    /// callsite inside w) and conflates the two allocas; k=2 keeps the
    /// [w-site, f1/f2-site] chains apart.
    fn nested_helper_module() -> (Module, FuncId, FuncId, ValueId, ValueId, ValueId, ValueId) {
        let mut m = Module::new("m");
        let h_fid = FuncId(0);
        let w_fid = FuncId(1);
        let f1_fid = FuncId(2);
        let f2_fid = FuncId(3);

        let mut h = FunctionBuilder::new("h", vec![Ty::ptr(Ty::I64)], Ty::ptr(Ty::I64));
        let hp = h.func().arg(0);
        h.ret(Some(hp));
        assert_eq!(m.add_function(h.finish()), h_fid);

        let mut w = FunctionBuilder::new("w", vec![Ty::ptr(Ty::I64)], Ty::ptr(Ty::I64));
        let wp = w.func().arg(0);
        let wr = w.call(h_fid, vec![wp], Ty::ptr(Ty::I64));
        w.ret(Some(wr));
        assert_eq!(m.add_function(w.finish()), w_fid);

        let mut f1 = FunctionBuilder::new("f1", vec![], Ty::Void);
        let a1 = f1.alloca(Ty::I64);
        let r1 = f1.call(w_fid, vec![a1], Ty::ptr(Ty::I64));
        f1.ret(None);
        assert_eq!(m.add_function(f1.finish()), f1_fid);

        let mut f2 = FunctionBuilder::new("f2", vec![], Ty::Void);
        let a2 = f2.alloca(Ty::I64);
        let r2 = f2.call(w_fid, vec![a2], Ty::ptr(Ty::I64));
        f2.ret(None);
        assert_eq!(m.add_function(f2.finish()), f2_fid);

        (m, f1_fid, f2_fid, a1, r1, a2, r2)
    }

    #[test]
    fn k2_separates_what_1cfa_conflates() {
        let (m, f1, f2, a1, r1, a2, r2) = nested_helper_module();
        let base = PointsTo::analyze(&m);
        let o1 = *base.points_to(f1, a1).objects.iter().next().unwrap();
        let o2 = *base.points_to(f2, a2).objects.iter().next().unwrap();
        assert_ne!(o1, o2);

        // The clone-based 1-CFA conflates: h has one context, so the
        // return value mixes both allocas.
        let c1 = CtxPointsTo::analyze(&m, &base);
        assert!(!c1.is_fallback());
        let p1 = c1.projected(f1, r1).unwrap();
        assert!(p1.objects.contains(&o1) && p1.objects.contains(&o2));

        // Summary k=2 keeps the chains apart.
        let s = SummaryPointsTo::analyze(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET);
        assert!(!s.is_fallback());
        let p1 = s.projected(f1, r1).unwrap();
        assert_eq!(
            p1.objects.iter().copied().collect::<Vec<_>>(),
            vec![o1],
            "k=2 must see only f1's alloca through the nested helper"
        );
        let p2 = s.projected(f2, r2).unwrap();
        assert_eq!(p2.objects.iter().copied().collect::<Vec<_>>(), vec![o2]);
        assert!(s.strong_updates() == 0);
        assert!(s.summaries() == 4);
    }

    #[test]
    fn per_context_subsets_projection_subsets_base() {
        let (m, f1, _, _, r1, _, _) = nested_helper_module();
        let base = PointsTo::analyze(&m);
        let s = SummaryPointsTo::analyze(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET);
        for fid in m.func_ids() {
            for v in m.func(fid).value_ids() {
                let proj = s.projected(fid, v).unwrap();
                let b = base.points_to(fid, v);
                assert!(
                    proj.objects.is_subset(&b.objects) && (!proj.unknown || b.unknown),
                    "projection must refine the base relation"
                );
                for ctx in 0..s.num_contexts_of(fid) {
                    let per = s.points_to_in(fid, ctx, v).unwrap();
                    assert!(per.objects.is_subset(&proj.objects));
                }
            }
        }
        let _ = (f1, r1);
    }

    #[test]
    fn recursive_scc_collapses_and_terminates() {
        let mut m = Module::new("m");
        let rec_fid = FuncId(0);
        let top_fid = FuncId(1);
        let mut rec = FunctionBuilder::new("rec", vec![Ty::ptr(Ty::I64)], Ty::ptr(Ty::I64));
        let rp = rec.func().arg(0);
        let rr = rec.call(rec_fid, vec![rp], Ty::ptr(Ty::I64));
        let _ = rr;
        rec.ret(Some(rp));
        assert_eq!(m.add_function(rec.finish()), rec_fid);
        let mut top = FunctionBuilder::new("top", vec![], Ty::Void);
        let a = top.alloca(Ty::I64);
        let r = top.call(rec_fid, vec![a], Ty::ptr(Ty::I64));
        top.ret(None);
        assert_eq!(m.add_function(top.finish()), top_fid);

        let base = PointsTo::analyze(&m);
        let s = SummaryPointsTo::analyze(&m, &base, CtxPolicy::KCfa(3), CTX_NODE_BUDGET);
        assert!(!s.is_fallback());
        // The self-recursive SCC collapses: one context per caller chain,
        // not one per unrolling depth.
        assert_eq!(s.num_contexts_of(rec_fid), 1);
        let o = *base.points_to(top_fid, a).objects.iter().next().unwrap();
        assert!(s.projected(top_fid, r).unwrap().objects.contains(&o));
    }

    /// `pp = alloca ptr; store a→pp; store d→pp; q = load pp`: the
    /// first store is provably dead, so the summary relation drops the
    /// stale pointee while the flow-insensitive base keeps both.
    fn restore_module() -> (Module, FuncId, ValueId, ValueId, ValueId, ValueId) {
        let mut m = Module::new("m");
        let fid = FuncId(0);
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let a = b.alloca(Ty::I64);
        let d = b.alloca(Ty::I64);
        let pp = b.alloca(Ty::ptr(Ty::I64));
        b.store(a, pp);
        b.store(d, pp);
        let q = b.load(pp);
        let _sink = b.load(q);
        b.ret(None);
        assert_eq!(m.add_function(b.finish()), fid);
        (m, fid, a, d, pp, q)
    }

    #[test]
    fn strong_update_drops_stale_pointee() {
        let (m, fid, a, d, _pp, q) = restore_module();
        let base = PointsTo::analyze(&m);
        let oa = *base.points_to(fid, a).objects.iter().next().unwrap();
        let od = *base.points_to(fid, d).objects.iter().next().unwrap();
        // Flow-insensitive: both stores accumulate.
        let bq = base.points_to(fid, q);
        assert!(bq.objects.contains(&oa) && bq.objects.contains(&od));

        let kills = strong_update_kills(&m, &base);
        assert_eq!(kills.len(), 1, "exactly the first store is dead");

        let s = SummaryPointsTo::analyze(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET);
        assert_eq!(s.strong_updates(), 1);
        let sq = s.projected(fid, q).unwrap();
        assert!(
            !sq.objects.contains(&oa) && sq.objects.contains(&od),
            "the killed store's pointee must be gone: {sq:?}"
        );
    }

    #[test]
    fn escape_blocks_strong_update() {
        // Same shape, but the slot's address is passed to a call — the
        // callee may read between the two stores, so no kill.
        let mut m = Module::new("m");
        let sink_fid = FuncId(0);
        let f_fid = FuncId(1);
        let mut sink = FunctionBuilder::new("sink", vec![Ty::ptr(Ty::ptr(Ty::I64))], Ty::Void);
        sink.ret(None);
        assert_eq!(m.add_function(sink.finish()), sink_fid);
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let a = b.alloca(Ty::I64);
        let d = b.alloca(Ty::I64);
        let pp = b.alloca(Ty::ptr(Ty::I64));
        b.store(a, pp);
        b.call(sink_fid, vec![pp], Ty::Void);
        b.store(d, pp);
        let _q = b.load(pp);
        b.ret(None);
        assert_eq!(m.add_function(b.finish()), f_fid);
        let base = PointsTo::analyze(&m);
        assert!(strong_update_kills(&m, &base).is_empty());
    }

    #[test]
    fn derived_pointer_store_blocks_strong_update() {
        // A store through a gep-derived view of the slot is not a
        // whole-cell must-overwrite — no kill.
        let mut m = Module::new("m");
        let fid = FuncId(0);
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let a = b.alloca(Ty::I64);
        let d = b.alloca(Ty::I64);
        let pp = b.alloca(Ty::ptr(Ty::I64));
        b.store(a, pp);
        let zero = b.const_int(Ty::I64, 0);
        let der = b.gep(pp, zero);
        b.store(d, der);
        let _q = b.load(pp);
        b.ret(None);
        assert_eq!(m.add_function(b.finish()), fid);
        let base = PointsTo::analyze(&m);
        assert!(strong_update_kills(&m, &base).is_empty());
    }

    #[test]
    fn opt02_equal_and_mutation_caught() {
        let (m, ..) = restore_module();
        let base = PointsTo::analyze(&m);
        assert_eq!(
            opt02_equivalence(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET, None),
            Some(true),
            "worklist and direct per-context solve must agree"
        );
        assert_eq!(
            opt02_equivalence(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET, Some(0)),
            Some(false),
            "a skipped summary kill must be caught"
        );
        // Non-summary policies: the check does not apply.
        assert_eq!(
            opt02_equivalence(&m, &base, CtxPolicy::OneCfaClone, CTX_NODE_BUDGET, None),
            None
        );
    }

    #[test]
    fn opt02_equal_on_nested_helper() {
        let (m, ..) = nested_helper_module();
        let base = PointsTo::analyze(&m);
        assert_eq!(
            opt02_equivalence(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET, None),
            Some(true)
        );
        assert_eq!(
            opt02_equivalence(&m, &base, CtxPolicy::ObjSensitive, CTX_NODE_BUDGET, None),
            Some(true)
        );
    }

    #[test]
    fn budget_exhaustion_reports_insensitive() {
        let (m, ..) = nested_helper_module();
        let base = PointsTo::analyze(&m);
        let s = CtxSolve::analyze(&m, &base, CtxPolicy::KCfa(2), 1);
        assert!(s.is_fallback());
        assert_eq!(s.policy_name(), "insensitive");
        assert!(s.points_to_in(FuncId(0), 0, ValueId(0)).is_none());
        // At full budget the same request reports its own name.
        let s = CtxSolve::analyze(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET);
        assert_eq!(s.policy_name(), "summary-2cfa");
        assert!(!s.is_fallback());
    }

    #[test]
    fn objsens_is_sound_vs_base() {
        let (m, ..) = nested_helper_module();
        let base = PointsTo::analyze(&m);
        let s = SummaryPointsTo::analyze(&m, &base, CtxPolicy::ObjSensitive, CTX_NODE_BUDGET);
        assert!(!s.is_fallback());
        for fid in m.func_ids() {
            for v in m.func(fid).value_ids() {
                let proj = s.projected(fid, v).unwrap();
                let b = base.points_to(fid, v);
                assert!(proj.objects.is_subset(&b.objects) && (!proj.unknown || b.unknown));
            }
        }
    }

    #[test]
    fn summary_reuse_counts_shared_instances() {
        // Two callers share w's instantiations only at equal chains; with
        // k=2 every chain is distinct, so reuse is 0 here — but under
        // k=1 the two f1/f2→w edges produce distinct chains while the
        // two w→h instantiations collapse onto one.
        let (m, ..) = nested_helper_module();
        let base = PointsTo::analyze(&m);
        let s1 = SummaryPointsTo::analyze(&m, &base, CtxPolicy::KCfa(1), CTX_NODE_BUDGET);
        assert!(s1.summary_reuse() >= 1, "w→h composes one shared summary");
    }

    #[test]
    fn ctx_chain_reports_nested_sites() {
        let (m, f1, _, _, _, _, _) = nested_helper_module();
        let base = PointsTo::analyze(&m);
        let s = SummaryPointsTo::analyze(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET);
        let h = FuncId(0);
        let n = s.num_contexts_of(h);
        assert_eq!(n, 2, "two k=2 chains into h");
        let mut sites: Vec<usize> = (0..n).map(|c| s.ctx_chain(h, c).len()).collect();
        sites.sort_unstable();
        assert_eq!(sites, vec![2, 2], "each chain carries both callsites");
        let _ = f1;
    }
}
