//! SSA def-use chains (paper Definition 2.2).

use pythia_ir::{Function, Inst, ValueId, ValueKind};

/// Def-use chains for one function: for every value, the instruction values
/// that use it as an operand.
#[derive(Debug, Clone)]
pub struct DefUse {
    users: Vec<Vec<ValueId>>,
}

impl DefUse {
    /// Compute chains for `f`.
    pub fn compute(f: &Function) -> Self {
        let mut users = vec![Vec::new(); f.num_values()];
        for v in f.value_ids() {
            if let ValueKind::Inst(inst) = &f.value(v).kind {
                // Only instructions actually placed in a block are real uses.
                if f.block_of(v).is_none() {
                    continue;
                }
                for op in inst.operands() {
                    users[op.0 as usize].push(v);
                }
            }
        }
        DefUse { users }
    }

    /// Instructions using `v` as an operand.
    pub fn users(&self, v: ValueId) -> &[ValueId] {
        &self.users[v.0 as usize]
    }

    /// Number of uses of `v`.
    pub fn num_uses(&self, v: ValueId) -> usize {
        self.users[v.0 as usize].len()
    }

    /// Loads that read through pointer `p` (directly).
    pub fn loads_through(&self, f: &Function, p: ValueId) -> Vec<ValueId> {
        self.users(p)
            .iter()
            .copied()
            .filter(|u| matches!(f.inst(*u), Some(Inst::Load { ptr }) if *ptr == p))
            .collect()
    }

    /// Stores that write through pointer `p` (directly).
    pub fn stores_through(&self, f: &Function, p: ValueId) -> Vec<ValueId> {
        self.users(p)
            .iter()
            .copied()
            .filter(|u| matches!(f.inst(*u), Some(Inst::Store { ptr, .. }) if *ptr == p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{FunctionBuilder, Ty};

    #[test]
    fn users_tracked() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let x = b.func().arg(0);
        let one = b.const_i64(1);
        let a = b.add(x, one);
        let c = b.add(a, x);
        b.ret(Some(c));
        let f = b.finish();
        let du = DefUse::compute(&f);
        assert_eq!(du.num_uses(x), 2);
        assert_eq!(du.num_uses(a), 1);
        assert_eq!(du.num_uses(c), 1); // the ret
    }

    #[test]
    fn loads_and_stores_through_pointer() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let p = b.alloca(Ty::I64);
        let one = b.const_i64(1);
        b.store(one, p);
        let l1 = b.load(p);
        let l2 = b.load(p);
        b.store(l1, p);
        b.ret(None);
        let f = b.finish();
        let du = DefUse::compute(&f);
        assert_eq!(du.loads_through(&f, p), vec![l1, l2]);
        assert_eq!(du.stores_through(&f, p).len(), 2);
    }

    #[test]
    fn unplaced_instructions_do_not_count_as_uses() {
        use pythia_ir::{Function, ValueData, ValueKind};
        let mut f = Function::new("f", vec![Ty::I64], Ty::Void);
        let x = f.arg(0);
        // An instruction value never inserted into any block:
        let _orphan = f.add_value(ValueData {
            kind: ValueKind::Inst(Inst::Ret { value: Some(x) }),
            ty: Ty::Void,
            name: None,
        });
        let du = DefUse::compute(&f);
        assert_eq!(du.num_uses(x), 0);
    }
}
