//! Overflow-reachability analysis: which memory objects can an attacker
//! actually corrupt?
//!
//! The instrumentation passes derive *obligations* (PA sign/auth pairs,
//! canary re-randomizations, DFI chkdef entries) for every object their
//! vulnerable-variable analysis flags. Many of those objects, however, are
//! provably out of reach of every overflow-capable write — protecting them
//! costs PA instructions without closing any attack. This module computes
//! the set of **corruptible** objects so `prune_obligations`
//! (`pythia-passes`) can drop the rest, and `pythia-lint` can independently
//! re-derive the same set to certify the pruned obligation map.
//!
//! # Threat model (first-order non-control-data attacks)
//!
//! The attacker injects bytes at memory-writing input channels. The VM's
//! attack engine writes the raw payload **unclamped** (`bulk_write`), so
//! every writing IC is an overflow source regardless of its benign length
//! argument. An overflow writes *upward* (increasing addresses) from the
//! channel destination, mirroring the VM layout:
//!
//! - **stack**: frames grow upward and callee frames sit above the
//!   caller's; a frame is zeroed on function entry, so bytes smashed above
//!   the live stack top are wiped before any callee reads them. An
//!   overflow from alloca `a` of function `h` therefore reaches the
//!   same-frame allocas at `a`'s offset or above, plus — because the
//!   channel may execute in a callee while `h`'s frame is live below —
//!   every alloca of `h`'s transitive callees (and `h` itself when
//!   recursive);
//! - **globals**: laid out in module order; an overflow reaches globals at
//!   the source's layout position or later;
//! - **heap**: allocation addresses are dynamic, so heap objects are
//!   mutually adjacent (any heap overflow may reach any heap object).
//!
//! Cross-region overflows (globals → heap → stack) require payloads of
//! gigabytes under the VM's address-space layout and are out of model, as
//! are *second-order* writes through pointers the attacker corrupted in
//! memory (the campaigns drive first-order channel smashes; stores through
//! tainted pointer values content-taint their static pointees instead).
//! Stores through ⊤ (`inttoptr`-derived) pointers have no static footprint
//! at all and force the analysis to its ⊤: everything reachable, nothing
//! prunable.
//!
//! Beyond channels, a store through a variable-index `gep` whose index is
//! **attacker-tainted** and **not proven in-bounds** by the interval
//! analysis ([`crate::interval`]) is a derived overflow source: the
//! adjacency closure of its target objects becomes reachable. A tainted
//! index that *is* proven in-bounds on all paths cannot escape its object
//! — that proof is exactly what the bounds pass contributes. Untainted
//! unproven indexes are program-controlled and benign under this model.

use crate::alias::{MemObjectKind, ObjId, PointsTo};
use crate::callgraph::CallGraph;
use crate::interval::{index_in_bounds, value_ranges, value_ranges_seeded, Interval, ValueRanges};
use crate::slicing::SliceContext;
use pythia_ir::{Callee, FuncId, Inst, Intrinsic, ValueId, ValueKind};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The corruptible-object set (root objects only) plus precision counters.
#[derive(Debug, Clone)]
pub struct OverflowReach {
    /// Root objects an overflow-capable write may corrupt.
    reachable: BTreeSet<ObjId>,
    /// ⊤: a store through an unknown pointer makes every object
    /// corruptible; no obligation may be pruned.
    pub top: bool,
    /// Writing input channels seeding the analysis.
    pub ic_sources: usize,
    /// Tainted variable-index gep stores that could *not* be proven
    /// in-bounds (each contributed its adjacency closure).
    pub unproven_gep_stores: usize,
    /// Tainted variable-index gep stores the interval analysis proved
    /// in-bounds (each pruned an overflow source). Proofs run per calling
    /// context of the context-sensitive layer: every context must
    /// discharge every object its (sharper) pointee set contains.
    pub proven_gep_stores: usize,
    /// Calling contexts the context-sensitive points-to layer explored.
    pub contexts: usize,
    /// Whether the context-sensitive solve fell back to the insensitive
    /// relation (node budget exhausted or object-remap divergence).
    pub ctx_fallback: bool,
    /// Reporting label of the context policy that actually ran
    /// (`"insensitive"` whenever the solve fell back, whatever was
    /// requested).
    pub policy: &'static str,
    /// Distinct per-function summaries the summary solver gathered (0
    /// for the clone/insensitive engines).
    pub summaries: usize,
    /// Call-edge instantiations served by an already-instantiated
    /// summary instead of a fresh constraint-graph clone.
    pub summary_reuse: usize,
    /// Store instructions dropped by flow-sensitive strong updates.
    pub strong_updates: usize,
}

impl OverflowReach {
    /// May the attacker corrupt `obj` (any field of its root)? `pt` must
    /// be the relation `obj` comes from; roots coarsen identically across
    /// precisions.
    pub fn is_reachable(&self, pt: &PointsTo, obj: ObjId) -> bool {
        self.top || self.reachable.contains(&pt.base_object(obj))
    }

    /// Number of corruptible root objects (meaningless when `top`).
    pub fn num_reachable(&self) -> usize {
        self.reachable.len()
    }

    /// Compute the fixpoint over `ctx` (field-sensitive relation).
    pub fn compute(ctx: &SliceContext<'_>) -> Self {
        Builder::new(ctx).run()
    }
}

struct Builder<'a, 'm> {
    ctx: &'a SliceContext<'m>,
    cg: CallGraph,
    /// Per-function VM-identical frame offsets: alloca -> (offset, size).
    frame_offsets: HashMap<FuncId, HashMap<ValueId, (u64, u64)>>,
    /// Lazily computed per-(function, calling-context) value ranges; the
    /// context's callsite chain seeds constant arguments into the
    /// parameters.
    ranges: HashMap<(FuncId, usize), ValueRanges>,
    /// Memoized context-projected store-pointer pointee sets (the
    /// fixpoint loop re-visits every store each round, and the
    /// projection unions every calling context).
    store_pts: HashMap<(FuncId, ValueId), crate::alias::ObjSet>,
    /// Functions whose address is taken (indirect-call targets).
    address_taken: Vec<FuncId>,
    reachable: BTreeSet<ObjId>,
    content_tainted: BTreeSet<ObjId>,
    tainted: HashSet<(FuncId, ValueId)>,
    top: bool,
    ic_sources: usize,
    unproven_gep_stores: BTreeSet<(FuncId, ValueId)>,
    proven_gep_stores: BTreeSet<(FuncId, ValueId)>,
}

impl<'a, 'm> Builder<'a, 'm> {
    fn new(ctx: &'a SliceContext<'m>) -> Self {
        let m = ctx.module;
        // Replicate the VM's frame layout exactly (vm.rs: allocas in
        // entry-block order, alignment max(elem, 8)).
        let mut frame_offsets = HashMap::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            let mut offs: HashMap<ValueId, (u64, u64)> = HashMap::new();
            let mut off = 0u64;
            for a in f.allocas() {
                if let Some(Inst::Alloca { elem, count }) = f.inst(a) {
                    let align = elem.align().max(8);
                    off = off.div_ceil(align).saturating_mul(align);
                    let size = elem.size().max(1).saturating_mul(u64::from((*count).max(1)));
                    offs.insert(a, (off, size));
                    off = off.saturating_add(size);
                }
            }
            frame_offsets.insert(fid, offs);
        }
        let mut address_taken = Vec::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            for v in f.value_ids() {
                if let ValueKind::FuncAddr(t) = f.value(v).kind {
                    if !address_taken.contains(&t) {
                        address_taken.push(t);
                    }
                }
            }
        }
        Builder {
            ctx,
            cg: CallGraph::build(m),
            frame_offsets,
            ranges: HashMap::new(),
            store_pts: HashMap::new(),
            address_taken,
            reachable: BTreeSet::new(),
            content_tainted: BTreeSet::new(),
            tainted: HashSet::new(),
            top: false,
            ic_sources: 0,
            unproven_gep_stores: BTreeSet::new(),
            proven_gep_stores: BTreeSet::new(),
        }
    }

    /// The adjacency closure of one *root* object: everything an upward
    /// overflow starting inside it may corrupt (including itself).
    fn adjacency(&self, root: ObjId) -> Vec<ObjId> {
        let pt = &self.ctx.points_to;
        let mut out = vec![root];
        match pt.obj_kind(root) {
            MemObjectKind::Stack { func: h, value: a } => {
                // Same-frame allocas at or above the source offset.
                let offs = &self.frame_offsets[&h];
                let src_off = offs.get(&a).map(|&(o, _)| o).unwrap_or(0);
                for (&other, &(o, _)) in offs {
                    if o >= src_off {
                        if let Some(id) = pt.obj_id(MemObjectKind::Stack {
                            func: h,
                            value: other,
                        }) {
                            out.push(id);
                        }
                    }
                }
                // Live frames above: every transitive callee of `h` (the
                // channel may run in a callee while h's frame sits below),
                // plus h's own deeper frames when recursive.
                let mut descendants: BTreeSet<FuncId> = BTreeSet::new();
                for &c in self.cg.callees(h) {
                    descendants.extend(self.cg.reachable_from(c));
                }
                let recursive = descendants.contains(&h);
                for (i, k) in pt.objects().iter().enumerate() {
                    if let MemObjectKind::Stack { func, .. } = k {
                        if (*func != h && descendants.contains(func)) || (*func == h && recursive) {
                            out.push(i as ObjId);
                        }
                    }
                }
            }
            MemObjectKind::Global(g) => {
                // Globals are laid out in module order.
                for (i, k) in pt.objects().iter().enumerate() {
                    if let MemObjectKind::Global(other) = k {
                        if other.0 >= g.0 {
                            out.push(i as ObjId);
                        }
                    }
                }
            }
            MemObjectKind::Heap { .. } => {
                // Allocation order is dynamic: all heap objects mutually.
                for (i, k) in pt.objects().iter().enumerate() {
                    if matches!(k, MemObjectKind::Heap { .. }) {
                        out.push(i as ObjId);
                    }
                }
            }
            MemObjectKind::Field { .. } => unreachable!("adjacency takes roots"),
        }
        out
    }

    fn mark_overflow_from(&mut self, roots: &BTreeSet<ObjId>) -> bool {
        let mut changed = false;
        for &r in roots {
            for o in self.adjacency(r) {
                changed |= self.reachable.insert(o);
            }
        }
        changed
    }

    fn taint(&mut self, fid: FuncId, v: ValueId) -> bool {
        self.tainted.insert((fid, v))
    }

    fn is_tainted(&self, fid: FuncId, v: ValueId) -> bool {
        self.tainted.contains(&(fid, v))
    }

    fn obj_root_corruptible_or_tainted(&self, root: ObjId) -> bool {
        self.reachable.contains(&root) || self.content_tainted.contains(&root)
    }

    /// Element count of `obj` for a gep of element size `elem_size` based
    /// at it, or `None` when unknown (heap sites with dynamic sizes).
    fn elem_count(&self, obj: ObjId, elem_size: u64) -> Option<u64> {
        if elem_size == 0 {
            return None;
        }
        let m = self.ctx.module;
        let pt = &self.ctx.points_to;
        let byte_size = match pt.obj_kind(obj) {
            MemObjectKind::Stack { func, value } => match m.func(func).inst(value) {
                Some(Inst::Alloca { elem, count }) => {
                    Some(elem.size().max(1) * u64::from((*count).max(1)))
                }
                _ => None,
            },
            MemObjectKind::Global(g) => Some(m.global(g).ty.size().max(1)),
            MemObjectKind::Heap { func, value } => match m.func(func).inst(value) {
                Some(Inst::Call {
                    callee: Callee::Intrinsic(i),
                    args,
                }) => {
                    let const_arg =
                        |n: usize| match args.get(n).map(|a| &m.func(func).value(*a).kind) {
                            Some(ValueKind::ConstInt(v)) if *v >= 0 => Some(*v as u64),
                            _ => None,
                        };
                    match i {
                        Intrinsic::Malloc | Intrinsic::SecureMalloc | Intrinsic::Mmap => {
                            const_arg(0)
                        }
                        Intrinsic::Calloc => Some(const_arg(0)?.checked_mul(const_arg(1)?)?),
                        _ => None,
                    }
                }
                _ => None,
            },
            MemObjectKind::Field { size, .. } => Some(size),
        }?;
        Some(byte_size / elem_size)
    }

    /// Is the gep store at `(fid, gep)` (with variable, tainted `index`)
    /// proven in-bounds for **every** object its base may point at, in
    /// **every** calling context?
    ///
    /// The 1-CFA layer makes this strictly stronger than one insensitive
    /// check: each context sees only the objects that flow in through its
    /// own callsite (often a single heap cell instead of every caller's),
    /// and its value ranges are seeded with the callsite's constant
    /// arguments (a constant `len` argument turns an `i <u len` guard
    /// into a closed bound). A context whose pointee set is empty has no
    /// store footprint and is vacuously discharged; on fallback the
    /// insensitive relation and unseeded ranges apply — the pre-context
    /// behavior.
    fn gep_proven(&mut self, fid: FuncId, gep: ValueId, base: ValueId, index: ValueId) -> bool {
        let f = self.ctx.module.func(fid);
        let Some(Inst::Gep { elem, .. }) = f.inst(gep) else {
            return false;
        };
        let elem_size = elem.size().max(1);
        let cpt = self.ctx.ctx_points_to();
        let nctx = cpt.num_contexts_of(fid);
        let mut any_objects = false;
        for ci in 0..nctx {
            let pts = match cpt.points_to_in(fid, ci, base) {
                Some(s) => s.clone(),
                None => self.ctx.points_to.points_to(fid, base).clone(),
            };
            if pts.unknown {
                return false;
            }
            if pts.objects.is_empty() {
                continue;
            }
            any_objects = true;
            let counts: Option<Vec<u64>> = pts
                .objects
                .iter()
                .map(|&o| self.elem_count(o, elem_size))
                .collect();
            let Some(counts) = counts else { return false };
            let ranges = self.ranges_for(fid, ci);
            if !counts
                .iter()
                .all(|&count| index_in_bounds(f, ranges, gep, index, count))
            {
                return false;
            }
        }
        // No context carries any pointee: the store has no static
        // footprint anywhere, which only counts as a *proof* if the
        // insensitive relation agrees it writes nothing.
        any_objects || self.ctx.points_to.points_to(fid, base).objects.is_empty()
    }

    /// The pointee set of a store's pointer under the context-sensitive
    /// projection (union over calling contexts), memoized per `(fid,
    /// ptr)`. Falls back to the insensitive base set when the context
    /// solve fell back. This is where flow-sensitive strong updates
    /// reach the pruner: a killed store's stale pointee is absent from
    /// every per-context set, so the projection drops it too.
    fn store_footprint(&mut self, fid: FuncId, ptr: ValueId) -> crate::alias::ObjSet {
        if let Some(s) = self.store_pts.get(&(fid, ptr)) {
            return s.clone();
        }
        let s = self
            .ctx
            .ctx_points_to()
            .projected(fid, ptr)
            .unwrap_or_else(|| self.ctx.points_to.points_to(fid, ptr).clone());
        self.store_pts.insert((fid, ptr), s.clone());
        s
    }

    /// Value ranges of `fid` in calling context `ci`, seeded with every
    /// parameter whose value is a compile-time constant along the
    /// context's callsite chain: a constant passed directly at the
    /// innermost site, or threaded through intermediate wrappers'
    /// parameters (`resolve_const_arg` walks outward through the chain).
    fn ranges_for(&mut self, fid: FuncId, ci: usize) -> &ValueRanges {
        if !self.ranges.contains_key(&(fid, ci)) {
            let m = self.ctx.module;
            let f = m.func(fid);
            let chain = self.ctx.ctx_points_to().ctx_chain(fid, ci);
            let mut seeds: Vec<(ValueId, Interval)> = Vec::new();
            for i in 0..f.params.len() {
                if let Some(c) = resolve_const_arg(m, &chain, 0, fid, i as u32) {
                    seeds.push((f.arg(i), Interval::exact(c)));
                }
            }
            let r = if seeds.is_empty() {
                value_ranges(f)
            } else {
                value_ranges_seeded(f, &seeds)
            };
            self.ranges.insert((fid, ci), r);
        }
        &self.ranges[&(fid, ci)]
    }

    /// Walk the pointer-derivation chain of a store's pointer and find the
    /// variable-index geps along it (through field_addr, casts, selects
    /// and phis, but not through memory).
    fn geps_in_chain(&self, fid: FuncId, ptr: ValueId) -> Vec<(ValueId, ValueId, ValueId)> {
        let f = self.ctx.module.func(fid);
        let mut out = Vec::new();
        let mut work = vec![ptr];
        let mut seen = HashSet::new();
        while let Some(v) = work.pop() {
            if !seen.insert(v) {
                continue;
            }
            match f.inst(v) {
                Some(Inst::Gep { base, index, .. }) => {
                    if !matches!(f.value(*index).kind, ValueKind::ConstInt(_)) {
                        out.push((v, *base, *index));
                    }
                    work.push(*base);
                }
                Some(Inst::FieldAddr { base, .. }) => work.push(*base),
                Some(Inst::Cast { value, .. }) => work.push(*value),
                Some(Inst::Select {
                    on_true, on_false, ..
                }) => {
                    work.push(*on_true);
                    work.push(*on_false);
                }
                Some(Inst::Phi { incomings }) => {
                    for (_, pv) in incomings {
                        work.push(*pv);
                    }
                }
                _ => {}
            }
        }
        out
    }

    fn run(mut self) -> OverflowReach {
        let m = self.ctx.module;

        // --- Seeds: every memory-writing input channel -------------------
        for site in self.ctx.channels.sites.clone() {
            if !site.writes_memory() {
                continue;
            }
            let Some(dst) = site.dest_ptr(m) else { continue };
            self.ic_sources += 1;
            let pts = self.ctx.points_to.points_to(site.func, dst).clone();
            if pts.unknown {
                self.top = true;
                break;
            }
            let roots: BTreeSet<ObjId> = pts
                .objects
                .iter()
                .map(|&o| self.ctx.points_to.base_object(o))
                .collect();
            self.mark_overflow_from(&roots);
        }

        // --- Taint/reach mutual fixpoint ---------------------------------
        while !self.top {
            let mut changed = false;
            for fid in m.func_ids() {
                let f = m.func(fid);
                for v in f.value_ids() {
                    let Some(inst) = f.inst(v) else { continue };
                    match inst {
                        Inst::Load { ptr } => {
                            if self.is_tainted(fid, v) {
                                continue;
                            }
                            let pts = self.ctx.points_to.points_to(fid, *ptr);
                            let hit = pts.unknown
                                || pts.objects.iter().any(|&o| {
                                    let root = self.ctx.points_to.base_object(o);
                                    self.obj_root_corruptible_or_tainted(root)
                                });
                            if hit {
                                changed |= self.taint(fid, v);
                            }
                        }
                        Inst::Store { value, ptr } => {
                            let pts = self.store_footprint(fid, *ptr);
                            if pts.unknown {
                                // No static footprint: everything reachable.
                                self.top = true;
                                break;
                            }
                            if self.is_tainted(fid, *value) || self.is_tainted(fid, *ptr) {
                                // First-order model: the store lands in its
                                // static pointees; their content becomes
                                // attacker-influenced.
                                for &o in &pts.objects {
                                    let root = self.ctx.points_to.base_object(o);
                                    changed |= self.content_tainted.insert(root);
                                }
                            }
                            // Derived overflow: tainted variable index the
                            // interval analysis cannot bound.
                            for (gep, base, index) in self.geps_in_chain(fid, *ptr) {
                                if !self.is_tainted(fid, index) {
                                    continue;
                                }
                                if self.gep_proven(fid, gep, base, index) {
                                    self.proven_gep_stores.insert((fid, gep));
                                } else if self.unproven_gep_stores.insert((fid, gep)) {
                                    let roots: BTreeSet<ObjId> = pts
                                        .objects
                                        .iter()
                                        .map(|&o| self.ctx.points_to.base_object(o))
                                        .collect();
                                    self.mark_overflow_from(&roots);
                                    changed = true;
                                }
                            }
                        }
                        // Pointer derivation deliberately ignores the index
                        // operand: a tainted in-bounds index stays inside
                        // its object (the gep-store rule above handles the
                        // unproven case).
                        Inst::Gep { base, .. } | Inst::FieldAddr { base, .. } => {
                            if self.is_tainted(fid, *base) && !self.is_tainted(fid, v) {
                                changed |= self.taint(fid, v);
                            }
                        }
                        Inst::Call { callee, args } => {
                            let any_arg_tainted =
                                args.iter().any(|&a| self.is_tainted(fid, a));
                            match callee {
                                Callee::Func(target) => {
                                    changed |=
                                        self.link_taint(fid, v, *target, args);
                                }
                                Callee::Indirect(_) => {
                                    let targets: Vec<FuncId> = self
                                        .address_taken
                                        .iter()
                                        .copied()
                                        .filter(|t| m.func(*t).params.len() == args.len())
                                        .collect();
                                    for t in targets {
                                        changed |= self.link_taint(fid, v, t, args);
                                    }
                                }
                                Callee::Intrinsic(_) => {
                                    if any_arg_tainted && !self.is_tainted(fid, v) {
                                        changed |= self.taint(fid, v);
                                    }
                                }
                            }
                        }
                        _ => {
                            if self.is_tainted(fid, v) {
                                continue;
                            }
                            if inst.operands().iter().any(|&op| self.is_tainted(fid, op)) {
                                changed |= self.taint(fid, v);
                            }
                        }
                    }
                }
                if self.top {
                    break;
                }
            }
            if !changed || self.top {
                break;
            }
        }

        let cpt = self.ctx.ctx_points_to();
        let cstats = cpt.stats();
        OverflowReach {
            reachable: self.reachable,
            top: self.top,
            ic_sources: self.ic_sources,
            unproven_gep_stores: self.unproven_gep_stores.len(),
            proven_gep_stores: self.proven_gep_stores.len(),
            contexts: cstats.contexts,
            ctx_fallback: cstats.fallback,
            policy: cpt.policy_name(),
            summaries: cpt.summaries(),
            summary_reuse: cpt.summary_reuse(),
            strong_updates: cpt.strong_updates(),
        }
    }

    /// Propagate taint across one (possibly indirect) call edge: tainted
    /// arguments taint the callee's parameters; a tainted return value
    /// taints the call result.
    fn link_taint(&mut self, fid: FuncId, call: ValueId, target: FuncId, args: &[ValueId]) -> bool {
        let m = self.ctx.module;
        let callee = m.func(target);
        let mut changed = false;
        for (i, &a) in args.iter().enumerate() {
            if i >= callee.params.len() {
                break;
            }
            if self.is_tainted(fid, a) {
                changed |= self.taint(target, callee.arg(i));
            }
        }
        for bb in callee.block_ids() {
            if let Some(Inst::Ret { value: Some(rv) }) = callee.terminator(bb) {
                if self.is_tainted(target, *rv) {
                    changed |= self.taint(fid, call);
                }
            }
        }
        changed
    }
}

/// Resolve parameter `param` of `target` to a compile-time constant by
/// walking the calling-context chain outward from `depth`. The chain
/// element at `depth` must be a *direct* call to `target` (an indirect
/// site may bind other targets' argument lists, so it resolves
/// nothing). A `ConstInt` argument resolves immediately; an argument
/// that is itself the caller's parameter recurses one chain element
/// further out — this is what lets a k=2 chain see a constant threaded
/// through a wrapper that 1-CFA's single callsite cannot.
fn resolve_const_arg(
    m: &pythia_ir::Module,
    chain: &[(FuncId, ValueId)],
    depth: usize,
    target: FuncId,
    param: u32,
) -> Option<i64> {
    let &(caller, site) = chain.get(depth)?;
    let cf = m.func(caller);
    let Some(Inst::Call {
        callee: Callee::Func(t),
        args,
    }) = cf.inst(site)
    else {
        return None;
    };
    if *t != target {
        return None;
    }
    let &a = args.get(param as usize)?;
    match cf.value(a).kind {
        ValueKind::ConstInt(c) => Some(c),
        ValueKind::Arg(j) => resolve_const_arg(m, chain, depth + 1, caller, j),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{FunctionBuilder, Module, Ty};

    /// `f() { low = alloca; buf = alloca[16]; high = alloca; gets(buf); }`
    /// — the overflow from `buf` reaches `buf` and `high` but not `low`
    /// (stack grows upward; `low` sits below the smashed buffer).
    #[test]
    fn stack_overflow_reaches_upward_only() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let low = b.alloca(Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        let high = b.alloca(Ty::I64);
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let reach = OverflowReach::compute(&ctx);
        assert!(!reach.top);
        let pt = &ctx.points_to;
        let id = |value| {
            pt.obj_id(MemObjectKind::Stack { func: fid, value })
                .unwrap()
        };
        assert!(reach.is_reachable(pt, id(buf)));
        assert!(reach.is_reachable(pt, id(high)));
        assert!(
            !reach.is_reachable(pt, id(low)),
            "objects below the smashed buffer are out of reach"
        );
    }

    #[test]
    fn callee_frames_are_reachable_from_caller_buffer() {
        let mut m = Module::new("m");
        // leaf() { x = alloca; }
        let mut lb = FunctionBuilder::new("leaf", vec![Ty::ptr(Ty::I8)], Ty::Void);
        let x = lb.alloca(Ty::I64);
        let p = lb.func().arg(0);
        lb.call_intrinsic(Intrinsic::Gets, vec![p], Ty::ptr(Ty::I8));
        lb.ret(None);
        let leaf = m.add_function(lb.finish());
        // main() { buf = alloca[16]; leaf(buf); }
        let mut b = FunctionBuilder::new("main", vec![], Ty::Void);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        b.call(leaf, vec![buf], Ty::Void);
        b.ret(None);
        let main = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let reach = OverflowReach::compute(&ctx);
        let pt = &ctx.points_to;
        // The channel runs in `leaf` but smashes `main`'s buffer; `leaf`'s
        // own frame is live above, so its alloca is reachable.
        let buf_id = pt
            .obj_id(MemObjectKind::Stack {
                func: main,
                value: buf,
            })
            .unwrap();
        let x_id = pt
            .obj_id(MemObjectKind::Stack {
                func: leaf,
                value: x,
            })
            .unwrap();
        assert!(reach.is_reachable(pt, buf_id));
        assert!(reach.is_reachable(pt, x_id));
    }

    #[test]
    fn untouched_function_objects_are_unreachable() {
        let mut m = Module::new("m");
        // other() { secret = alloca; } — never called, no channels.
        let mut ob = FunctionBuilder::new("other", vec![], Ty::Void);
        let secret = ob.alloca(Ty::I64);
        ob.ret(None);
        let other = m.add_function(ob.finish());
        let mut b = FunctionBuilder::new("main", vec![], Ty::Void);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        b.ret(None);
        m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let reach = OverflowReach::compute(&ctx);
        let pt = &ctx.points_to;
        let secret_id = pt
            .obj_id(MemObjectKind::Stack {
                func: other,
                value: secret,
            })
            .unwrap();
        assert!(!reach.top);
        assert!(!reach.is_reachable(pt, secret_id));
    }

    #[test]
    fn top_store_forces_everything_reachable() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let secret = b.alloca(Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 8));
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        let addr = b.const_i64(0x1234);
        let forged = b.cast(pythia_ir::CastKind::IntToPtr, addr, Ty::ptr(Ty::I64));
        let zero = b.const_i64(0);
        b.store(zero, forged);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let reach = OverflowReach::compute(&ctx);
        assert!(reach.top);
        let pt = &ctx.points_to;
        let secret_id = pt
            .obj_id(MemObjectKind::Stack {
                func: fid,
                value: secret,
            })
            .unwrap();
        assert!(reach.is_reachable(pt, secret_id));
    }

    /// A tainted index that the interval analysis proves in-bounds must
    /// NOT widen the reachable set; an unproven one must.
    #[test]
    fn bounds_proof_suppresses_derived_overflow() {
        use pythia_ir::CmpPred;
        let build = |guarded: bool| {
            let mut m = Module::new("m");
            let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
            let okbb = b.new_block("ok");
            let bad = b.new_block("bad");
            let table = b.alloca(Ty::array(Ty::I64, 8));
            // `above` sits above `table`: a table overflow reaches it.
            let above = b.alloca(Ty::I64);
            // `inbuf` is the frame's top alloca, so the channel overflow
            // seed reaches only itself — isolating the gep-store effect.
            let inbuf = b.alloca(Ty::array(Ty::I64, 4));
            b.call_intrinsic(Intrinsic::Gets, vec![inbuf], Ty::ptr(Ty::I8));
            let zero = b.const_i64(0);
            let eight = b.const_i64(8);
            let p0 = b.gep(inbuf, zero);
            let idx = b.load(p0); // tainted: read from the smashed buffer
            if guarded {
                let c1ok = b.new_block("c1ok");
                let c1 = b.icmp(CmpPred::Sge, idx, zero);
                b.br(c1, c1ok, bad);
                b.switch_to(c1ok);
                let c2 = b.icmp(CmpPred::Slt, idx, eight);
                b.br(c2, okbb, bad);
            } else {
                let c = b.icmp(CmpPred::Sge, idx, zero);
                b.br(c, okbb, bad);
            }
            b.switch_to(okbb);
            let p = b.gep(table, idx);
            b.store(zero, p);
            b.ret(None);
            b.switch_to(bad);
            b.ret(None);
            let fid = m.add_function(b.finish());
            (m, fid, above, inbuf)
        };

        let (m, fid, above, _inbuf) = build(true);
        let ctx = SliceContext::new(&m);
        let reach = OverflowReach::compute(&ctx);
        assert_eq!(reach.proven_gep_stores, 1);
        assert_eq!(reach.unproven_gep_stores, 0);
        let above_id = ctx
            .points_to
            .obj_id(MemObjectKind::Stack {
                func: fid,
                value: above,
            })
            .unwrap();
        assert!(
            !reach.is_reachable(&ctx.points_to, above_id),
            "proven-in-bounds store must not reach past the table"
        );

        let (m2, fid2, above2, _) = build(false);
        let ctx2 = SliceContext::new(&m2);
        let reach2 = OverflowReach::compute(&ctx2);
        assert_eq!(reach2.unproven_gep_stores, 1);
        let above2_id = ctx2
            .points_to
            .obj_id(MemObjectKind::Stack {
                func: fid2,
                value: above2,
            })
            .unwrap();
        assert!(
            reach2.is_reachable(&ctx2.points_to, above2_id),
            "unproven tainted index is a derived overflow source"
        );
    }
}
