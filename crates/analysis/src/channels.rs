//! Input-channel discovery and classification (paper §2.6 / Fig. 5b).

use pythia_ir::{Callee, FuncId, IcCategory, Inst, Intrinsic, Module, ValueId};
use std::collections::BTreeMap;

/// One input-channel call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcSite {
    /// Function containing the call.
    pub func: FuncId,
    /// The call instruction's value.
    pub call: ValueId,
    /// Which library channel it is.
    pub intrinsic: Intrinsic,
    /// Paper category.
    pub category: IcCategory,
}

impl IcSite {
    /// Whether this channel can write attacker bytes into memory.
    pub fn writes_memory(&self) -> bool {
        self.intrinsic.writes_memory()
    }

    /// The destination pointer operand of the channel, if it writes memory.
    pub fn dest_ptr(&self, m: &Module) -> Option<ValueId> {
        let f = m.func(self.func);
        match f.inst(self.call) {
            Some(Inst::Call { args, .. }) => {
                self.intrinsic.dest_arg().and_then(|i| args.get(i).copied())
            }
            _ => None,
        }
    }
}

/// All input channels of a module, plus the category histogram the paper
/// reports in Fig. 5b.
#[derive(Debug, Clone, Default)]
pub struct InputChannels {
    /// Every IC call site, in module order.
    pub sites: Vec<IcSite>,
}

impl InputChannels {
    /// Scan a module for input-channel call sites.
    pub fn find(m: &Module) -> Self {
        let mut sites = Vec::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            for bb in f.block_ids() {
                for &iv in &f.block(bb).insts {
                    if let Some(Inst::Call {
                        callee: Callee::Intrinsic(i),
                        ..
                    }) = f.inst(iv)
                    {
                        if let Some(category) = i.ic_category() {
                            sites.push(IcSite {
                                func: fid,
                                call: iv,
                                intrinsic: *i,
                                category,
                            });
                        }
                    }
                }
            }
        }
        InputChannels { sites }
    }

    /// Total number of input channels.
    pub fn total(&self) -> usize {
        self.sites.len()
    }

    /// Sites within one function.
    pub fn in_function(&self, fid: FuncId) -> impl Iterator<Item = &IcSite> + '_ {
        self.sites.iter().filter(move |s| s.func == fid)
    }

    /// Category histogram (Fig. 5b).
    pub fn histogram(&self) -> BTreeMap<IcCategory, usize> {
        let mut h = BTreeMap::new();
        for s in &self.sites {
            *h.entry(s.category).or_insert(0) += 1;
        }
        h
    }

    /// Fraction of sites in `cat` (0.0 if there are no sites).
    pub fn fraction(&self, cat: IcCategory) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let n = self.sites.iter().filter(|s| s.category == cat).count();
        n as f64 / self.sites.len() as f64
    }

    /// Only the memory-writing channels (the attack surface).
    pub fn writing_sites(&self) -> impl Iterator<Item = &IcSite> + '_ {
        self.sites.iter().filter(|s| s.writes_memory())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{FunctionBuilder, Module, Ty};

    fn module_with_ics() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let fmt = m.add_str_global("fmt", "%d");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        let src = b.alloca(Ty::array(Ty::I8, 16));
        let ga = b.global_addr(fmt, Ty::array(Ty::I8, 3));
        b.call_intrinsic(Intrinsic::Printf, vec![ga], Ty::I64);
        b.call_intrinsic(Intrinsic::Strcpy, vec![buf, src], Ty::ptr(Ty::I8));
        b.call_intrinsic(Intrinsic::Memcpy, vec![buf, src], Ty::ptr(Ty::I8));
        let n = b.const_i64(8);
        b.call_intrinsic(Intrinsic::Fgets, vec![buf, n], Ty::ptr(Ty::I8));
        b.call_intrinsic(Intrinsic::Strlen, vec![buf], Ty::I64); // not an IC
        b.ret(None);
        let fid = m.add_function(b.finish());
        (m, fid)
    }

    #[test]
    fn finds_and_classifies() {
        let (m, fid) = module_with_ics();
        let ics = InputChannels::find(&m);
        assert_eq!(ics.total(), 4);
        let h = ics.histogram();
        assert_eq!(h.get(&IcCategory::Print), Some(&1));
        assert_eq!(h.get(&IcCategory::MoveCopy), Some(&2));
        assert_eq!(h.get(&IcCategory::Get), Some(&1));
        assert_eq!(ics.in_function(fid).count(), 4);
        assert!((ics.fraction(IcCategory::MoveCopy) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn writing_sites_exclude_print() {
        let (m, _) = module_with_ics();
        let ics = InputChannels::find(&m);
        let writing: Vec<_> = ics.writing_sites().collect();
        assert_eq!(writing.len(), 3);
        assert!(writing.iter().all(|s| s.category != IcCategory::Print));
    }

    #[test]
    fn dest_ptr_resolves() {
        let (m, _) = module_with_ics();
        let ics = InputChannels::find(&m);
        for s in ics.writing_sites() {
            assert!(s.dest_ptr(&m).is_some());
        }
    }

    #[test]
    fn empty_module_has_no_channels() {
        let m = Module::new("empty");
        let ics = InputChannels::find(&m);
        assert_eq!(ics.total(), 0);
        assert_eq!(ics.fraction(IcCategory::Print), 0.0);
    }
}
