//! # pythia-analysis — the paper's compiler analyses
//!
//! Implements the static machinery of "Pythia: Compiler-Guided Defense
//! Against Non-Control Data Attacks" (ASPLOS 2024):
//!
//! - [`mod@cfg`] — orderings, dominators, post-dominators,
//!   control dependence, natural-loop depths;
//! - [`callgraph`] — direct/indirect call edges, reachability, Tarjan SCC
//!   recursion detection;
//! - [`dataflow`] — a generic forward/backward worklist solver every
//!   fixpoint analysis (and the lint rules) is built on;
//! - [`defuse`] — SSA def-use chains (Definition 2.2);
//! - [`liveness`] — live variables and flow-sensitive reaching stores
//!   (the machine-pass/spill side of §5 and DFI's def-set precision);
//! - [`alias`] — module-wide Andersen-style points-to analysis with
//!   field-sensitive abstract objects (and a field-insensitive mode
//!   modeling DFI's coarser view);
//! - [`interval`] — value-range dataflow proving variable-index accesses
//!   in-bounds along all paths;
//! - [`reach`] — overflow-reachability: which objects an attacker-driven
//!   overflow-capable write can corrupt (drives obligation pruning);
//! - [`channels`] — input-channel discovery & the six categories
//!   (Definition 2.1, Fig. 5b);
//! - [`slicing`] — *branch decomposition* (backward slices, Alg. 1) and
//!   *input channel construction* (forward slices), with a DFI mode that
//!   terminates at pointer arithmetic / field accesses;
//! - [`vulnerability`] — the vulnerable-variable sets (CPA vs refined
//!   Pythia), stack/heap classification, branch-security and
//!   attack-distance metrics (Definition 2.4).
//!
//! # Examples
//!
//! ```
//! use pythia_ir::{FunctionBuilder, Module, Ty, CmpPred, Intrinsic};
//! use pythia_analysis::{SliceContext, SliceMode, VulnerabilityReport};
//!
//! // if (buf[0] > 0) ...   where buf is written by gets()
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
//! let buf = b.alloca(Ty::array(Ty::I64, 4));
//! b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
//! let zero = b.const_i64(0);
//! let p = b.gep(buf, zero);
//! let v = b.load(p);
//! let c = b.icmp(CmpPred::Sgt, v, zero);
//! let (t, e) = (b.new_block("t"), b.new_block("e"));
//! b.br(c, t, e);
//! b.switch_to(t); b.ret(Some(v));
//! b.switch_to(e); b.ret(Some(zero));
//! let fid = m.add_function(b.finish());
//!
//! let ctx = SliceContext::new(&m);
//! let br = ctx.branches_in(fid)[0];
//! let slice = ctx.backward_slice(fid, br, SliceMode::Pythia);
//! assert!(slice.ic_affected());
//!
//! let report = VulnerabilityReport::analyze(&ctx);
//! assert_eq!(report.num_stack_vulns(), 1);
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod callgraph;
pub mod cfg;
pub mod channels;
pub mod dataflow;
pub mod defuse;
pub mod interval;
pub mod liveness;
pub mod reach;
pub mod slicing;
pub mod summary;
pub mod vulnerability;

pub use alias::{
    CtxPointsTo, CtxStats, MemObjectKind, ObjId, ObjSet, PointsTo, Precision, CTX_NODE_BUDGET,
};
pub use callgraph::CallGraph;
pub use cfg::{
    back_edges, control_dependence, loop_depths, reverse_postorder, Dominators, PostDominators,
};
pub use channels::{IcSite, InputChannels};
pub use dataflow::{solve, DataflowAnalysis, Direction, SolveResult};
pub use defuse::DefUse;
pub use interval::{index_in_bounds, value_ranges, value_ranges_seeded, Interval, ValueRanges};
pub use liveness::{Liveness, ReachingStores};
pub use reach::OverflowReach;
pub use slicing::{BackwardSlice, ForwardSlice, SliceContext, SliceMode};
pub use summary::{opt02_equivalence, CtxPolicy, CtxSolve, SummaryPointsTo};
pub use vulnerability::{
    BranchInfo, HeapVuln, IcEffect, PrunedObligations, StackVuln, VulnerabilityReport,
};
