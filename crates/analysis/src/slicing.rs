//! Program slicing: backward slices of branch predicates (*branch
//! decomposition*, paper Alg. 1) and forward slices of input-channel
//! destinations (*input channel construction*).
//!
//! Two modes exist (paper §6.2/§7):
//!
//! - [`SliceMode::Pythia`] traverses pointer arithmetic (`gep`), field
//!   accesses and memory (through the points-to relation), producing long
//!   slices;
//! - [`SliceMode::Dfi`] models DFI's documented limitation: its data-flow
//!   reasoning **terminates** at pointer arithmetic with a non-constant
//!   index and at field-sensitive accesses, leaving the rest of the slice —
//!   and hence the branch — unprotected.

use crate::alias::{ObjId, PointsTo, Precision};
use crate::summary::CtxSolve;
use crate::channels::{IcSite, InputChannels};
use pythia_ir::{BlockId, Callee, FuncId, Inst, Intrinsic, Module, ValueId, ValueKind};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Default capacity of the backward-slice memo table (entries). Far
/// above any real suite's distinct-branch count — even the ref tier's
/// largest module stays in the low thousands of branches × 2 modes — so
/// the bound only matters as a guarantee: whole memoized slices are the
/// analysis side's largest retained allocation, and an unbounded table
/// would grow with module size forever. At capacity, queries for
/// uncached keys compute without inserting (no eviction, so cached
/// entries stay valid and results stay deterministic).
pub const SLICE_MEMO_CAPACITY: usize = 65_536;

/// Which technique's slicing rules to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SliceMode {
    /// Full traversal (Pythia).
    Pythia,
    /// Terminate at pointer arithmetic / field accesses (DFI).
    Dfi,
}

/// A backward slice rooted at one conditional branch.
#[derive(Debug, Clone)]
pub struct BackwardSlice {
    /// The branch instruction (a `br`).
    pub branch: ValueId,
    /// Function containing the branch.
    pub func: FuncId,
    /// SSA values in the slice, per function.
    pub values: BTreeSet<(FuncId, ValueId)>,
    /// Memory objects whose contents feed the branch.
    pub objects: BTreeSet<ObjId>,
    /// Whether traversal completed without hitting a termination condition
    /// the mode cannot reason past.
    pub complete: bool,
    /// Input channels that can taint the slice (write channels whose
    /// destination may overlap a slice object).
    pub tainting_ics: Vec<IcSite>,
    /// ICs whose destination directly overlaps the branch's own predicate
    /// load (paper's "directly affected" branches).
    pub direct_ics: Vec<IcSite>,
}

impl BackwardSlice {
    /// Number of slice values that are pointer-typed (Fig. 7a).
    pub fn pointer_value_count(&self, m: &Module) -> usize {
        self.values
            .iter()
            .filter(|(fid, v)| m.func(*fid).value(*v).ty.is_ptr())
            .count()
    }

    /// Whether any input channel can taint this branch.
    pub fn ic_affected(&self) -> bool {
        !self.tainting_ics.is_empty()
    }
}

/// A forward slice rooted at one input channel's destination.
#[derive(Debug, Clone)]
pub struct ForwardSlice {
    /// The channel this slice grows from.
    pub site: IcSite,
    /// Values that carry channel-derived (attacker-influenced) data.
    pub values: BTreeSet<(FuncId, ValueId)>,
    /// Objects that may hold channel-derived data.
    pub objects: BTreeSet<ObjId>,
}

/// Per-relation object indexes (which stores/loads/channels may touch
/// each abstract object). Built once per points-to relation; the
/// field-sensitive instance is *overlap-closed*: an access whose pointer
/// resolves to object `o` is registered under every object overlapping
/// `o` (its root and intersecting fields), so a store through a base
/// pointer is found when slicing a load through a field pointer.
struct ObjectMaps {
    /// For each object: store instructions that may write it.
    stores_by_object: HashMap<ObjId, Vec<(FuncId, ValueId)>>,
    /// For each object: memory-writing IC sites that may write it.
    ics_by_object: HashMap<ObjId, Vec<IcSite>>,
    /// For each object: loads that may read it.
    loads_by_object: HashMap<ObjId, Vec<(FuncId, ValueId)>>,
}

impl ObjectMaps {
    fn build(module: &Module, points_to: &PointsTo, channels: &InputChannels) -> Self {
        let mut stores_by_object: HashMap<ObjId, Vec<(FuncId, ValueId)>> = HashMap::new();
        let mut loads_by_object: HashMap<ObjId, Vec<(FuncId, ValueId)>> = HashMap::new();
        for fid in module.func_ids() {
            let f = module.func(fid);
            for bb in f.block_ids() {
                for &iv in &f.block(bb).insts {
                    match f.inst(iv) {
                        Some(Inst::Store { ptr, .. }) => {
                            if let Some(objs) = points_to.write_targets(fid, *ptr) {
                                for o in objs {
                                    for o2 in points_to.overlapping_objects(o) {
                                        stores_by_object.entry(o2).or_default().push((fid, iv));
                                    }
                                }
                            }
                        }
                        Some(Inst::Load { ptr }) => {
                            let pts = points_to.points_to(fid, *ptr);
                            for &o in &pts.objects {
                                for o2 in points_to.overlapping_objects(o) {
                                    loads_by_object.entry(o2).or_default().push((fid, iv));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let mut ics_by_object: HashMap<ObjId, Vec<IcSite>> = HashMap::new();
        for site in channels.sites.iter().filter(|s| s.writes_memory()) {
            if let Some(dst) = site.dest_ptr(module) {
                if let Some(objs) = points_to.write_targets(site.func, dst) {
                    for o in objs {
                        for o2 in points_to.overlapping_objects(o) {
                            ics_by_object.entry(o2).or_default().push(*site);
                        }
                    }
                }
            }
        }
        for v in stores_by_object.values_mut() {
            v.dedup();
        }
        for v in loads_by_object.values_mut() {
            v.dedup();
        }
        ics_by_object
            .values_mut()
            .for_each(|v| v.dedup_by_key(|s| (s.func, s.call)));
        ObjectMaps {
            stores_by_object,
            ics_by_object,
            loads_by_object,
        }
    }
}

/// Shared indexes for slicing over one module.
pub struct SliceContext<'m> {
    /// The module under analysis.
    pub module: &'m Module,
    /// Field-sensitive points-to results — the relation Pythia/CPA slicing
    /// and obligation derivation use.
    pub points_to: PointsTo,
    /// Field-insensitive points-to results — the coarser relation DFI's
    /// model assumes (paper §6.2: DFI terminates at field accesses).
    /// Root object ids are shared with [`Self::points_to`].
    pub points_to_fi: PointsTo,
    /// Discovered input channels.
    pub channels: InputChannels,
    /// Object indexes over the field-sensitive relation (overlap-closed).
    maps: ObjectMaps,
    /// Object indexes over the field-insensitive relation.
    maps_fi: ObjectMaps,
    /// Call sites per callee.
    callers: HashMap<FuncId, Vec<(FuncId, ValueId)>>,
    /// Lazily computed def-use chains, one slot per function. Shared by
    /// every forward slice instead of being rebuilt per query.
    du: Vec<OnceLock<crate::defuse::DefUse>>,
    /// Lazily computed control-dependence sets, one slot per function.
    cd: Vec<OnceLock<Vec<Vec<BlockId>>>>,
    /// Memo table for whole backward slices, keyed by (func, branch, mode).
    /// CPA/Pythia/DFI and the control-dependence extension all re-query the
    /// same branches; each is computed once per context. Bounded by
    /// [`Self::memo_capacity`]: at capacity, further keys compute without
    /// inserting.
    slice_memo: RwLock<HashMap<(FuncId, ValueId, SliceMode), Arc<BackwardSlice>>>,
    /// Maximum number of memoized slices ([`SLICE_MEMO_CAPACITY`] by
    /// default).
    memo_capacity: usize,
    /// Memo-table hits (served without recomputation).
    memo_hits: AtomicU64,
    /// Memo-table misses (full traversals performed).
    memo_misses: AtomicU64,
    /// Lazily computed context-sensitive points-to layer over
    /// [`Self::points_to`] (policy-selectable: clone 1-CFA, summary
    /// k-CFA, or object sensitivity). Only the overflow-reachability
    /// pruner pays for it, on first use.
    ctx1: OnceLock<CtxSolve>,
}

/// The context is shared by reference across evaluation worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SliceContext<'static>>();
};

impl<'m> SliceContext<'m> {
    /// Build the context (runs points-to analysis at both precisions).
    pub fn new(module: &'m Module) -> Self {
        Self::with_memo_capacity(module, SLICE_MEMO_CAPACITY)
    }

    /// [`Self::new`] with an explicit slice-memo bound. Mostly for tests:
    /// a tiny capacity exercises the compute-without-insert path that a
    /// real suite never reaches.
    pub fn with_memo_capacity(module: &'m Module, memo_capacity: usize) -> Self {
        let points_to = PointsTo::analyze(module);
        let points_to_fi = PointsTo::analyze_with(module, Precision::FieldInsensitive);
        let channels = InputChannels::find(module);
        let maps = ObjectMaps::build(module, &points_to, &channels);
        let maps_fi = ObjectMaps::build(module, &points_to_fi, &channels);

        let mut callers: HashMap<FuncId, Vec<(FuncId, ValueId)>> = HashMap::new();
        for fid in module.func_ids() {
            let f = module.func(fid);
            for bb in f.block_ids() {
                for &iv in &f.block(bb).insts {
                    if let Some(Inst::Call {
                        callee: Callee::Func(target),
                        ..
                    }) = f.inst(iv)
                    {
                        callers.entry(*target).or_default().push((fid, iv));
                    }
                }
            }
        }

        let nfuncs = module.func_ids().count();
        SliceContext {
            module,
            points_to,
            points_to_fi,
            channels,
            maps,
            maps_fi,
            callers,
            du: (0..nfuncs).map(|_| OnceLock::new()).collect(),
            cd: (0..nfuncs).map(|_| OnceLock::new()).collect(),
            slice_memo: RwLock::new(HashMap::new()),
            memo_capacity,
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            ctx1: OnceLock::new(),
        }
    }

    /// The context-sensitive points-to layer over the field-sensitive
    /// relation, computed once per context on first use (and shared by
    /// concurrent readers). The engine is selected by
    /// `PYTHIA_CTX_POLICY` (default: summary-based 2-CFA) within the
    /// `PYTHIA_CTX_BUDGET` node budget (`0` forces the insensitive
    /// relation — `scripts/bench.sh` uses it for the per-policy trend
    /// line). On fallback its queries return `None` and callers use
    /// [`Self::points_to`] — always a sound superset.
    pub fn ctx_points_to(&self) -> &CtxSolve {
        self.ctx1
            .get_or_init(|| CtxSolve::from_env(self.module, &self.points_to))
    }

    /// Pre-seed the context-sensitive layer with an explicit policy and
    /// budget, bypassing the environment knobs. A no-op if the layer was
    /// already initialised (first writer wins). Policy-comparison
    /// experiments use this to solve the same module under several
    /// policies without mutating process-global state.
    pub fn set_ctx_policy(&self, policy: crate::summary::CtxPolicy, budget: usize) {
        let _ = self
            .ctx1
            .set(CtxSolve::analyze(self.module, &self.points_to, policy, budget));
    }

    /// Def-use chains of `fid`, computed once per context and shared by
    /// every forward slice (and any concurrent reader).
    pub fn def_use(&self, fid: FuncId) -> &crate::defuse::DefUse {
        self.du[fid.0 as usize].get_or_init(|| crate::defuse::DefUse::compute(self.module.func(fid)))
    }

    /// Control-dependence sets of `fid` (per block), computed once per
    /// context and shared by every control-dependence extension.
    pub fn control_deps(&self, fid: FuncId) -> &[Vec<BlockId>] {
        self.cd[fid.0 as usize].get_or_init(|| crate::cfg::control_dependence(self.module.func(fid)))
    }

    /// (hits, misses) of the backward-slice memo table.
    pub fn memo_stats(&self) -> (u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    /// The points-to relation a slicing mode assumes: field-sensitive for
    /// Pythia/CPA, field-insensitive for DFI.
    pub fn relation(&self, mode: SliceMode) -> &PointsTo {
        match mode {
            SliceMode::Pythia => &self.points_to,
            SliceMode::Dfi => &self.points_to_fi,
        }
    }

    fn maps_for(&self, mode: SliceMode) -> &ObjectMaps {
        match mode {
            SliceMode::Pythia => &self.maps,
            SliceMode::Dfi => &self.maps_fi,
        }
    }

    /// Stores that may write `obj` (field-sensitive relation).
    pub fn stores_of(&self, obj: ObjId) -> &[(FuncId, ValueId)] {
        self.stores_of_in(SliceMode::Pythia, obj)
    }

    /// Stores that may write `obj` under `mode`'s relation.
    pub fn stores_of_in(&self, mode: SliceMode, obj: ObjId) -> &[(FuncId, ValueId)] {
        self.maps_for(mode)
            .stores_by_object
            .get(&obj)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Loads that may read `obj` (field-sensitive relation).
    pub fn loads_of(&self, obj: ObjId) -> &[(FuncId, ValueId)] {
        self.loads_of_in(SliceMode::Pythia, obj)
    }

    /// Loads that may read `obj` under `mode`'s relation.
    pub fn loads_of_in(&self, mode: SliceMode, obj: ObjId) -> &[(FuncId, ValueId)] {
        self.maps_for(mode)
            .loads_by_object
            .get(&obj)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Memory-writing input channels that may write `obj` (field-sensitive
    /// relation).
    pub fn ics_writing(&self, obj: ObjId) -> &[IcSite] {
        self.ics_writing_in(SliceMode::Pythia, obj)
    }

    /// Memory-writing input channels that may write `obj` under `mode`'s
    /// relation.
    pub fn ics_writing_in(&self, mode: SliceMode, obj: ObjId) -> &[IcSite] {
        self.maps_for(mode)
            .ics_by_object
            .get(&obj)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Call sites of `callee`.
    pub fn callers_of(&self, callee: FuncId) -> &[(FuncId, ValueId)] {
        self.callers.get(&callee).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All conditional branches in a function.
    pub fn branches_in(&self, fid: FuncId) -> Vec<ValueId> {
        let f = self.module.func(fid);
        let mut out = Vec::new();
        for bb in f.block_ids() {
            for &iv in &f.block(bb).insts {
                if matches!(f.inst(iv), Some(Inst::Br { .. })) {
                    out.push(iv);
                }
            }
        }
        out
    }

    /// Backward slice of one branch (paper Alg. 1 generalized with memory
    /// and interprocedural edges).
    ///
    /// Results are memoized per `(func, branch, mode)`: CPA, Pythia and
    /// DFI evaluation — and the control-dependence extension — re-query
    /// the same branches, so each slice is traversed at most once per
    /// context. Safe to call from multiple threads.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is not a `br` instruction of `func`.
    pub fn backward_slice(&self, func: FuncId, branch: ValueId, mode: SliceMode) -> BackwardSlice {
        let key = (func, branch, mode);
        if let Some(hit) = self.slice_memo.read().unwrap().get(&key) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return (**hit).clone();
        }
        let slice = self.compute_backward_slice(func, branch, mode);
        let mut memo = self.slice_memo.write().unwrap();
        // A racing thread may have inserted meanwhile; either result is
        // identical, so keep whichever is already there. Count the miss
        // only on actual insertion (the lost race counts as a hit): that
        // makes `misses` = distinct keys ever computed and `hits` =
        // re-queries, both independent of thread scheduling — the suite's
        // determinism tests compare these counters across worker counts.
        let at_capacity = memo.len() >= self.memo_capacity;
        match memo.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                // At capacity the result is returned without caching (no
                // eviction — cached entries stay shared and the table
                // never exceeds the bound); the recomputation still
                // counts as a miss, so hits + misses = queries holds at
                // any capacity.
                if !at_capacity {
                    v.insert(Arc::new(slice.clone()));
                }
                self.memo_misses.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        slice
    }

    /// The uncached traversal behind [`Self::backward_slice`].
    fn compute_backward_slice(
        &self,
        func: FuncId,
        branch: ValueId,
        mode: SliceMode,
    ) -> BackwardSlice {
        let f = self.module.func(func);
        let cond = match f.inst(branch) {
            Some(Inst::Br { cond, .. }) => *cond,
            other => panic!("backward_slice on non-branch {other:?}"),
        };

        let mut slice = BackwardSlice {
            branch,
            func,
            values: BTreeSet::new(),
            objects: BTreeSet::new(),
            complete: true,
            tainting_ics: Vec::new(),
            direct_ics: Vec::new(),
        };

        let mut work: VecDeque<(FuncId, ValueId)> = VecDeque::new();
        let mut seen: HashSet<(FuncId, ValueId)> = HashSet::new();
        work.push_back((func, cond));
        seen.insert((func, cond));
        // Objects whose loads feed the predicate *in the first traversal
        // step* count as "direct" predicate storage.
        let mut direct_objects: BTreeSet<ObjId> = BTreeSet::new();
        let mut budget = 200_000usize; // hard cap to bound pathological cases

        while let Some((fid, v)) = work.pop_front() {
            if budget == 0 {
                slice.complete = false;
                break;
            }
            budget -= 1;
            slice.values.insert((fid, v));
            let fun = self.module.func(fid);
            let push = |work: &mut VecDeque<(FuncId, ValueId)>,
                        seen: &mut HashSet<(FuncId, ValueId)>,
                        fid: FuncId,
                        v: ValueId| {
                if seen.insert((fid, v)) {
                    work.push_back((fid, v));
                }
            };

            match &fun.value(v).kind {
                ValueKind::Arg(idx) => {
                    // Interprocedural: extend into every caller's argument.
                    for &(cf, cv) in self.callers_of(fid) {
                        if let Some(Inst::Call { args, .. }) = self.module.func(cf).inst(cv) {
                            if let Some(&a) = args.get(*idx as usize) {
                                push(&mut work, &mut seen, cf, a);
                            }
                        }
                    }
                }
                ValueKind::Inst(inst) => match inst {
                    Inst::Load { ptr } => {
                        push(&mut work, &mut seen, fid, *ptr);
                        let pts = self.relation(mode).points_to(fid, *ptr);
                        if pts.unknown {
                            // Cannot enumerate the loaded-from objects.
                            slice.complete = false;
                        }
                        for &o in &pts.objects {
                            let newly = slice.objects.insert(o);
                            if fid == func && is_direct_feed(fun, cond, v) {
                                direct_objects.insert(o);
                            }
                            if newly {
                                for &(sf, sv) in self.stores_of_in(mode, o) {
                                    if let Some(Inst::Store { value, .. }) =
                                        self.module.func(sf).inst(sv)
                                    {
                                        push(&mut work, &mut seen, sf, *value);
                                    }
                                }
                            }
                        }
                    }
                    Inst::Gep { base, index, .. } => match mode {
                        SliceMode::Pythia => {
                            push(&mut work, &mut seen, fid, *base);
                            push(&mut work, &mut seen, fid, *index);
                        }
                        SliceMode::Dfi => {
                            let fun2 = self.module.func(fid);
                            if matches!(fun2.value(*index).kind, ValueKind::ConstInt(_)) {
                                push(&mut work, &mut seen, fid, *base);
                            } else {
                                // DFI cannot reason about pointer arithmetic.
                                slice.complete = false;
                            }
                        }
                    },
                    Inst::FieldAddr { base, .. } => match mode {
                        SliceMode::Pythia => push(&mut work, &mut seen, fid, *base),
                        SliceMode::Dfi => {
                            // Field-insensitive: terminate.
                            slice.complete = false;
                        }
                    },
                    Inst::Call { callee, args } => {
                        match callee {
                            Callee::Func(target) => {
                                // The call's value comes from the callee's
                                // returns; extend into them.
                                let cf = self.module.func(*target);
                                for bb in cf.block_ids() {
                                    if let Some(Inst::Ret { value: Some(rv) }) = cf.terminator(bb) {
                                        push(&mut work, &mut seen, *target, *rv);
                                    }
                                }
                            }
                            Callee::Intrinsic(i) => {
                                // Data-returning intrinsics depend on args.
                                if matches!(
                                    i,
                                    Intrinsic::Strlen
                                        | Intrinsic::Strcmp
                                        | Intrinsic::Strncmp
                                        | Intrinsic::Scanf
                                        | Intrinsic::Sscanf
                                        | Intrinsic::Read
                                ) {
                                    for &a in args {
                                        push(&mut work, &mut seen, fid, a);
                                    }
                                }
                            }
                            Callee::Indirect(_) => {
                                if mode == SliceMode::Dfi {
                                    slice.complete = false;
                                }
                            }
                        }
                    }
                    _ => {
                        for op in inst.operands() {
                            push(&mut work, &mut seen, fid, op);
                        }
                    }
                },
                _ => {}
            }
        }

        // Which write-channels can taint the slice?
        let mut seen_ic: HashSet<(FuncId, ValueId)> = HashSet::new();
        for &o in &slice.objects {
            for site in self.ics_writing_in(mode, o) {
                if seen_ic.insert((site.func, site.call)) {
                    slice.tainting_ics.push(*site);
                    if direct_objects.contains(&o) {
                        slice.direct_ics.push(*site);
                    }
                }
            }
        }
        slice
    }

    /// Extend a backward slice with *control dependencies*: the branch
    /// conditions governing whether each slice member executes, and (by
    /// transitive data slicing) everything those conditions depend on.
    /// This is Ottenstein-complete slicing; the paper's Algorithm 1 is the
    /// data-only core, and the extension strictly grows coverage — an
    /// attacker who can flip a *governing* branch controls the guarded
    /// definitions too.
    pub fn extend_with_control_deps(&self, slice: &mut BackwardSlice, mode: SliceMode) {
        for _round in 0..8 {
            // Collect governing branch instructions not yet in the slice.
            // Both slice *values* and the *stores* that write slice objects
            // are governed sites: flipping the branch that guards a store
            // changes the loaded value just as surely as tainting it.
            let mut sites: Vec<(FuncId, ValueId)> = slice.values.iter().copied().collect();
            for &o in &slice.objects {
                sites.extend(self.stores_of(o).iter().copied());
            }
            let mut new_branches: Vec<(FuncId, ValueId)> = Vec::new();
            for (fid, v) in sites {
                let f = self.module.func(fid);
                let Some(bb) = f.block_of(v) else { continue };
                let cd = self.control_deps(fid);
                for &gov in &cd[bb.0 as usize] {
                    if let Some(&term) = f.block(gov).insts.last() {
                        if matches!(f.inst(term), Some(Inst::Br { .. }))
                            && !slice.values.contains(&(fid, term))
                            && !new_branches.contains(&(fid, term))
                        {
                            new_branches.push((fid, term));
                        }
                    }
                }
            }
            if new_branches.is_empty() {
                break;
            }
            for (fid, br) in new_branches {
                slice.values.insert((fid, br));
                let sub = self.backward_slice(fid, br, mode);
                slice.values.extend(sub.values.iter().copied());
                slice.objects.extend(sub.objects.iter().copied());
                slice.complete &= sub.complete;
                for ic in sub.tainting_ics {
                    if !slice
                        .tainting_ics
                        .iter()
                        .any(|s| s.func == ic.func && s.call == ic.call)
                    {
                        slice.tainting_ics.push(ic);
                    }
                }
            }
        }
    }

    /// Forward slice from one memory-writing input channel (input channel
    /// construction).
    pub fn forward_slice(&self, site: IcSite) -> ForwardSlice {
        let mut out = ForwardSlice {
            site,
            values: BTreeSet::new(),
            objects: BTreeSet::new(),
        };
        let Some(dst) = site.dest_ptr(self.module) else {
            return out;
        };
        let Some(root_objs) = self.points_to.write_targets(site.func, dst) else {
            return out;
        };

        // Taint propagation: objects -> loads -> value dataflow -> stores ->
        // objects, to a fixpoint.
        let mut obj_work: VecDeque<ObjId> = root_objs.iter().copied().collect();
        out.objects.extend(root_objs);
        let mut val_work: VecDeque<(FuncId, ValueId)> = VecDeque::new();
        let mut seen_vals: HashSet<(FuncId, ValueId)> = HashSet::new();
        let mut budget = 200_000usize;

        loop {
            while let Some(o) = obj_work.pop_front() {
                // Every load that may read this object becomes tainted.
                if let Some(loads) = self.maps.loads_by_object.get(&o) {
                    for &(fid, iv) in loads {
                        if seen_vals.insert((fid, iv)) {
                            val_work.push_back((fid, iv));
                        }
                    }
                }
            }
            let Some((fid, v)) = val_work.pop_front() else {
                break;
            };
            if budget == 0 {
                break;
            }
            budget -= 1;
            out.values.insert((fid, v));
            let f = self.module.func(fid);
            let du = self.def_use(fid);
            for &user in du.users(v) {
                match f.inst(user) {
                    Some(Inst::Store { ptr, value }) if *value == v => {
                        if let Some(objs) = self.points_to.write_targets(fid, *ptr) {
                            for o in objs {
                                if out.objects.insert(o) {
                                    obj_work.push_back(o);
                                }
                            }
                        }
                    }
                    Some(Inst::Call {
                        callee: Callee::Func(target),
                        args,
                    }) => {
                        // Taint flows into callees via arguments.
                        let cf = self.module.func(*target);
                        for (i, a) in args.iter().enumerate() {
                            if *a == v && i < cf.params.len() {
                                let p = cf.arg(i);
                                if seen_vals.insert((*target, p)) {
                                    val_work.push_back((*target, p));
                                }
                            }
                        }
                    }
                    // Intrinsic/indirect calls do not propagate taint into
                    // a callee body (there is none to slice into).
                    Some(Inst::Call { .. }) => {}
                    Some(inst)
                        if !inst.is_terminator()
                            && f.value(user).ty != pythia_ir::Ty::Void
                            && seen_vals.insert((fid, user)) =>
                    {
                        // Any computed result is tainted.
                        val_work.push_back((fid, user));
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

/// Whether value `v` feeds the branch condition `cond` within one step
/// (i.e. `v` is `cond` itself or a direct operand of the icmp).
fn is_direct_feed(f: &pythia_ir::Function, cond: ValueId, v: ValueId) -> bool {
    if v == cond {
        return true;
    }
    if let Some(inst) = f.inst(cond) {
        return inst.operands().contains(&v);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Module, Ty};

    /// Build the paper's Listing-1-style function:
    /// user buffer checked by a branch, attacker channel writes nearby.
    fn listing1_like() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("access", vec![], Ty::I64);
        let user = b.alloca(Ty::array(Ty::I8, 8));
        b.set_name(user, "user");
        let input = b.alloca(Ty::array(Ty::I8, 8));
        b.set_name(input, "someinput");
        // strcpy(user, <ext>) -- fill user legitimately (scan-ish)
        let n = b.const_i64(8);
        b.call_intrinsic(Intrinsic::Fgets, vec![user, n], Ty::ptr(Ty::I8));
        // strcpy(input-buffer, attacker) happens via gets
        b.call_intrinsic(Intrinsic::Gets, vec![input], Ty::ptr(Ty::I8));
        // branch on user[0]
        let zero = b.const_i64(0);
        let p0 = b.gep(user, zero);
        let c0 = b.load(p0);
        let admin = b.const_int(Ty::I8, 97);
        let cond = b.icmp(CmpPred::Eq, c0, admin);
        let t = b.new_block("super");
        let e = b.new_block("normal");
        b.br(cond, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(e);
        b.ret(Some(zero));
        let fid = m.add_function(b.finish());
        (m, fid)
    }

    #[test]
    fn branch_slice_reaches_ic() {
        let (m, fid) = listing1_like();
        let ctx = SliceContext::new(&m);
        let branches = ctx.branches_in(fid);
        assert_eq!(branches.len(), 1);
        let slice = ctx.backward_slice(fid, branches[0], SliceMode::Pythia);
        assert!(slice.complete);
        assert!(slice.ic_affected());
        // fgets writes the user buffer the branch reads -> tainting.
        assert!(slice
            .tainting_ics
            .iter()
            .any(|s| s.intrinsic == Intrinsic::Fgets));
        // The `gets` into the *other* buffer must not appear: distinct objects.
        assert!(!slice
            .tainting_ics
            .iter()
            .any(|s| s.intrinsic == Intrinsic::Gets));
        assert_eq!(slice.objects.len(), 1);
    }

    #[test]
    fn dfi_mode_terminates_at_dynamic_gep() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I64, 8));
        let i = b.func().arg(0); // dynamic index
        let p = b.gep(buf, i);
        let v = b.load(p);
        let zero = b.const_i64(0);
        let cond = b.icmp(CmpPred::Sgt, v, zero);
        let t = b.new_block("t");
        let e = b.new_block("e");
        b.br(cond, t, e);
        b.switch_to(t);
        b.ret(Some(v));
        b.switch_to(e);
        b.ret(Some(zero));
        let fid = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let br = ctx.branches_in(fid)[0];
        let pythia = ctx.backward_slice(fid, br, SliceMode::Pythia);
        let dfi = ctx.backward_slice(fid, br, SliceMode::Dfi);
        assert!(pythia.complete);
        assert!(
            !dfi.complete,
            "DFI should stop at dynamic pointer arithmetic"
        );
        assert!(pythia.values.len() > dfi.values.len());
    }

    #[test]
    fn dfi_mode_terminates_at_field_access() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let s = b.alloca(Ty::strukt(vec![Ty::I64, Ty::I64]));
        let f1 = b.field_addr(s, 1);
        let v = b.load(f1);
        let zero = b.const_i64(0);
        let cond = b.icmp(CmpPred::Sgt, v, zero);
        let t = b.new_block("t");
        let e = b.new_block("e");
        b.br(cond, t, e);
        b.switch_to(t);
        b.ret(Some(v));
        b.switch_to(e);
        b.ret(Some(zero));
        let fid = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let br = ctx.branches_in(fid)[0];
        assert!(ctx.backward_slice(fid, br, SliceMode::Pythia).complete);
        assert!(!ctx.backward_slice(fid, br, SliceMode::Dfi).complete);
    }

    #[test]
    fn interprocedural_slice_through_argument() {
        let mut m = Module::new("m");
        // check(x) { if (x > 0) ... }
        let mut cb = FunctionBuilder::new("check", vec![Ty::I64], Ty::I64);
        let x = cb.func().arg(0);
        let zero = cb.const_i64(0);
        let cond = cb.icmp(CmpPred::Sgt, x, zero);
        let t = cb.new_block("t");
        let e = cb.new_block("e");
        cb.br(cond, t, e);
        cb.switch_to(t);
        cb.ret(Some(x));
        cb.switch_to(e);
        cb.ret(Some(zero));
        let check = m.add_function(cb.finish());
        // main: v loaded from IC-written buffer, passed to check.
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I64, 4));
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        let zero = b.const_i64(0);
        let p = b.gep(buf, zero);
        let v = b.load(p);
        let r = b.call(check, vec![v], Ty::I64);
        b.ret(Some(r));
        m.add_function(b.finish());

        let ctx = SliceContext::new(&m);
        let br = ctx.branches_in(check)[0];
        let slice = ctx.backward_slice(check, br, SliceMode::Pythia);
        assert!(slice.ic_affected(), "taint must flow through the call");
        assert!(slice
            .tainting_ics
            .iter()
            .any(|s| s.intrinsic == Intrinsic::Gets));
    }

    #[test]
    fn forward_slice_taints_derived_values_and_objects() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I64, 4));
        let out = b.alloca(Ty::I64);
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        let zero = b.const_i64(0);
        let p = b.gep(buf, zero);
        let v = b.load(p);
        let one = b.const_i64(1);
        let w = b.add(v, one);
        b.store(w, out);
        b.ret(Some(w));
        let fid = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let site = *ctx
            .channels
            .sites
            .iter()
            .find(|s| s.intrinsic == Intrinsic::Gets)
            .unwrap();
        let fs = ctx.forward_slice(site);
        assert!(fs.values.contains(&(fid, v)));
        assert!(fs.values.contains(&(fid, w)));
        // The store propagates taint into `out`'s object.
        assert_eq!(fs.objects.len(), 2);
    }

    #[test]
    fn backward_slice_is_memoized() {
        let (m, fid) = listing1_like();
        let ctx = SliceContext::new(&m);
        let br = ctx.branches_in(fid)[0];
        assert_eq!(ctx.memo_stats(), (0, 0));
        let first = ctx.backward_slice(fid, br, SliceMode::Pythia);
        assert_eq!(ctx.memo_stats(), (0, 1));
        // A second identical query is served from the memo table without
        // recomputation, and with an identical result.
        let second = ctx.backward_slice(fid, br, SliceMode::Pythia);
        assert_eq!(ctx.memo_stats(), (1, 1));
        assert_eq!(first.values, second.values);
        assert_eq!(first.objects, second.objects);
        assert_eq!(first.complete, second.complete);
        // A different mode is a different key: one more miss, no new hit.
        ctx.backward_slice(fid, br, SliceMode::Dfi);
        assert_eq!(ctx.memo_stats(), (1, 2));
    }

    #[test]
    fn memo_capacity_bounds_the_table_without_changing_results() {
        let (m, fid) = listing1_like();
        let unbounded = SliceContext::new(&m);
        let bounded = SliceContext::with_memo_capacity(&m, 1);
        let br = bounded.branches_in(fid)[0];
        // First key fills the table.
        let a1 = bounded.backward_slice(fid, br, SliceMode::Pythia);
        assert_eq!(bounded.memo_stats(), (0, 1));
        // Second key finds the table full: computed, not cached, still a
        // miss — and the result matches an unbounded context's.
        let b1 = bounded.backward_slice(fid, br, SliceMode::Dfi);
        assert_eq!(bounded.memo_stats(), (0, 2));
        let b2 = bounded.backward_slice(fid, br, SliceMode::Dfi);
        assert_eq!(bounded.memo_stats(), (0, 3), "uncached key recomputes");
        assert_eq!(b1.values, b2.values);
        assert_eq!(
            b1.values,
            unbounded.backward_slice(fid, br, SliceMode::Dfi).values
        );
        // The cached key still hits.
        let a2 = bounded.backward_slice(fid, br, SliceMode::Pythia);
        assert_eq!(bounded.memo_stats(), (1, 3));
        assert_eq!(a1.values, a2.values);
    }

    #[test]
    fn shared_caches_are_thread_safe() {
        let (m, fid) = listing1_like();
        let ctx = SliceContext::new(&m);
        let br = ctx.branches_in(fid)[0];
        let baseline = ctx.backward_slice(fid, br, SliceMode::Pythia);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let slice = ctx.backward_slice(fid, br, SliceMode::Pythia);
                    assert_eq!(slice.values, baseline.values);
                    let _ = ctx.def_use(fid);
                    let _ = ctx.control_deps(fid);
                });
            }
        });
        let (hits, misses) = ctx.memo_stats();
        assert_eq!(hits + misses, 5);
        assert!(hits >= 4, "concurrent identical queries must mostly hit");
    }

    #[test]
    fn untainted_branch_has_no_ics() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let cond = b.icmp(CmpPred::Sgt, x, zero);
        let t = b.new_block("t");
        let e = b.new_block("e");
        b.br(cond, t, e);
        b.switch_to(t);
        b.ret(Some(x));
        b.switch_to(e);
        b.ret(Some(zero));
        let fid = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let br = ctx.branches_in(fid)[0];
        let slice = ctx.backward_slice(fid, br, SliceMode::Pythia);
        assert!(!slice.ic_affected());
        assert!(slice.objects.is_empty());
    }
}

#[cfg(test)]
mod control_slice_tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Module, Ty};

    /// `if (guard_from_channel) { flag = 1 }; if (flag) privileged` —
    /// the second branch's *data* slice sees only `flag`; with control
    /// dependencies it must also absorb the guard and its channel.
    #[test]
    fn control_extension_reaches_the_governing_channel() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let (gt, gj) = (b.new_block("gt"), b.new_block("gj"));
        let (pt, pe) = (b.new_block("pt"), b.new_block("pe"));
        let guard_slot = b.alloca(Ty::I64);
        let flag = b.alloca(Ty::I64);
        let zero = b.const_i64(0);
        b.store(zero, flag);
        b.call_intrinsic(Intrinsic::Gets, vec![guard_slot], Ty::ptr(Ty::I8));
        let g = b.load(guard_slot);
        let c1 = b.icmp(CmpPred::Sgt, g, zero);
        b.br(c1, gt, gj);
        b.switch_to(gt);
        let one = b.const_i64(1);
        b.store(one, flag);
        b.jmp(gj);
        b.switch_to(gj);
        let fv = b.load(flag);
        let c2 = b.icmp(CmpPred::Eq, fv, one);
        b.br(c2, pt, pe);
        b.switch_to(pt);
        b.ret(Some(one));
        b.switch_to(pe);
        b.ret(Some(zero));
        let fid = m.add_function(b.finish());

        let ctx = SliceContext::new(&m);
        let branches = ctx.branches_in(fid);
        let second = branches[1];
        let mut slice = ctx.backward_slice(fid, second, SliceMode::Pythia);
        // Data-only: the store `flag = 1` is in the slice (a writer of
        // flag), but not the *guard condition* governing it…
        let data_values = slice.values.len();
        ctx.extend_with_control_deps(&mut slice, SliceMode::Pythia);
        assert!(
            slice.values.len() > data_values,
            "control extension must grow the slice"
        );
        // …after extension the gets-written guard object is included and
        // its channel appears among the tainting ICs.
        assert!(slice
            .tainting_ics
            .iter()
            .any(|s| s.intrinsic == Intrinsic::Gets));
    }

    #[test]
    fn control_extension_is_monotone_and_idempotent() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![Ty::I64], Ty::I64);
        let (t, e) = (b.new_block("t"), b.new_block("e"));
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(x));
        b.switch_to(e);
        b.ret(Some(zero));
        let fid = m.add_function(b.finish());
        let ctx = SliceContext::new(&m);
        let br = ctx.branches_in(fid)[0];
        let base = ctx.backward_slice(fid, br, SliceMode::Pythia);
        let mut once = base.clone();
        ctx.extend_with_control_deps(&mut once, SliceMode::Pythia);
        assert!(once.values.is_superset(&base.values));
        let mut twice = once.clone();
        ctx.extend_with_control_deps(&mut twice, SliceMode::Pythia);
        assert_eq!(once.values, twice.values, "second extension is a no-op");
    }
}
