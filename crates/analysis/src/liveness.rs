//! Live-variable analysis (backward dataflow).
//!
//! Not required by the paper's algorithms directly, but the machine-level
//! half of the paper ("to handle register spills at the machine code
//! generation level, we leverage the instrumented metadata ... to detect
//! additional encryption & authentication points", §5) is driven by
//! exactly this information: a vulnerable value live across many blocks is
//! a spill candidate, and every spill adds PA work under CPA. The cost
//! model consumes [`Liveness::max_pressure`] as its spill proxy.
//!
//! Both analyses here are thin clients of the generic worklist solver in
//! [`crate::dataflow`]: they state a lattice and a transfer function and
//! let [`crate::dataflow::solve`] do the iteration.

use crate::dataflow::{solve, DataflowAnalysis, Direction};
use pythia_ir::{BlockId, Function, Inst, ValueId, ValueKind};
use std::collections::{HashMap, HashSet};

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<ValueId>>,
    live_out: Vec<HashSet<ValueId>>,
}

/// The dataflow problem behind [`Liveness`]: backward may-analysis over
/// the powerset of instruction values, with phi uses attributed to their
/// incoming edge via the solver's edge hook.
struct LivenessProblem {
    uses: Vec<HashSet<ValueId>>,
    defs: Vec<HashSet<ValueId>>,
}

impl DataflowAnalysis for LivenessProblem {
    type Fact = HashSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self, _f: &Function, _bb: BlockId) -> Self::Fact {
        HashSet::new()
    }
    fn top(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        a.union(b).copied().collect()
    }
    fn transfer(&self, _f: &Function, bb: BlockId, out: &Self::Fact) -> Self::Fact {
        let b = bb.0 as usize;
        let mut inn = self.uses[b].clone();
        for v in out {
            if !self.defs[b].contains(v) {
                inn.insert(*v);
            }
        }
        inn
    }
    fn edge(&self, f: &Function, from: BlockId, to: BlockId, fact: &Self::Fact) -> Self::Fact {
        // Phi uses are live on the edge: a phi in `to` using a value from
        // `from` keeps it live out of `from` only.
        let mut out = fact.clone();
        for &iv in &f.block(to).insts {
            if let Some(Inst::Phi { incomings }) = f.inst(iv) {
                for (pred, v) in incomings {
                    if *pred == from && matches!(f.value(*v).kind, ValueKind::Inst(_)) {
                        out.insert(*v);
                    }
                }
            }
        }
        out
    }
}

impl Liveness {
    /// Compute liveness for `f` with the standard backward fixpoint.
    ///
    /// Arguments and constants are excluded (they are rematerializable);
    /// only instruction results participate.
    pub fn compute(f: &Function) -> Self {
        let nb = f.num_blocks();
        // Per-block use/def (upward-exposed uses).
        let mut uses = vec![HashSet::new(); nb];
        let mut defs = vec![HashSet::new(); nb];
        let is_inst_value = |v: ValueId| matches!(f.value(v).kind, ValueKind::Inst(_));

        for bb in f.block_ids() {
            let b = bb.0 as usize;
            for &iv in &f.block(bb).insts {
                if let Some(inst) = f.inst(iv) {
                    // Phi operands are uses on the incoming *edge*, not in
                    // this block; the edge hook handles them per-successor.
                    if !matches!(inst, Inst::Phi { .. }) {
                        for op in inst.operands() {
                            if is_inst_value(op) && !defs[b].contains(&op) {
                                uses[b].insert(op);
                            }
                        }
                    }
                    defs[b].insert(iv);
                }
            }
        }

        let sol = solve(f, &LivenessProblem { uses, defs });
        // Backward: the flow-input side is the block's exit, the
        // post-transfer side its entry.
        Liveness {
            live_in: sol.output,
            live_out: sol.input,
        }
    }

    /// Values live on entry to `bb`.
    pub fn live_in(&self, bb: BlockId) -> &HashSet<ValueId> {
        &self.live_in[bb.0 as usize]
    }

    /// Values live on exit from `bb`.
    pub fn live_out(&self, bb: BlockId) -> &HashSet<ValueId> {
        &self.live_out[bb.0 as usize]
    }

    /// Whether `v` is live across (into) any block other than its own —
    /// the cheap spill-candidate predicate.
    pub fn crosses_blocks(&self, v: ValueId) -> bool {
        self.live_in.iter().any(|s| s.contains(&v))
    }

    /// Maximum number of simultaneously block-live values — a crude
    /// register-pressure proxy.
    pub fn max_pressure(&self) -> usize {
        self.live_in.iter().map(HashSet::len).max().unwrap_or(0)
    }
}

/// Flow-sensitive reaching definitions over *memory objects*.
///
/// For each block and each object, which store instructions may reach its
/// entry. This is the textbook analysis behind DFI's static def-sets
/// (Castro et al. compute it with their "reaching definitions analysis");
/// our DFI pass uses the cheaper flow-insensitive object sets, and this
/// analysis exists both to *measure* how much precision that costs
/// (see `flow_sensitivity_gain`) and to let the linter cross-check the
/// pass's emitted check-sets against a flow-sensitive ground truth.
#[derive(Debug, Clone)]
pub struct ReachingStores {
    /// block -> object -> set of store instruction values
    reach_in: Vec<HashMap<u32, HashSet<ValueId>>>,
}

/// Forward may-analysis: store instructions walk their block in order, a
/// single-object store strongly updates (replaces) that object's def set,
/// a multi-object store weakly extends every candidate.
struct ReachingProblem<F: Fn(ValueId) -> Vec<u32>> {
    objects_of: F,
}

impl<F: Fn(ValueId) -> Vec<u32>> DataflowAnalysis for ReachingProblem<F> {
    type Fact = HashMap<u32, HashSet<ValueId>>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self, _f: &Function, _bb: BlockId) -> Self::Fact {
        HashMap::new()
    }
    fn top(&self, _f: &Function) -> Self::Fact {
        HashMap::new()
    }
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        let mut out = a.clone();
        for (o, defs) in b {
            out.entry(*o).or_default().extend(defs.iter().copied());
        }
        out
    }
    fn transfer(&self, f: &Function, bb: BlockId, inn: &Self::Fact) -> Self::Fact {
        let mut out = inn.clone();
        for &iv in &f.block(bb).insts {
            if let Some(Inst::Store { ptr, .. }) = f.inst(iv) {
                let objs = (self.objects_of)(*ptr);
                let strong = objs.len() == 1;
                for o in objs {
                    let entry = out.entry(o).or_default();
                    if strong {
                        entry.clear();
                    }
                    entry.insert(iv);
                }
            }
        }
        out
    }
}

impl ReachingStores {
    /// Compute for one function. `objects_of` maps a store's pointer to
    /// the object ids it may write (points-to abstraction, supplied by
    /// the caller so this module stays independent of the alias crate).
    pub fn compute(f: &Function, objects_of: impl Fn(ValueId) -> Vec<u32>) -> Self {
        let sol = solve(f, &ReachingProblem { objects_of });
        ReachingStores {
            reach_in: sol.input,
        }
    }

    /// Stores of `obj` that may reach the entry of `bb`.
    pub fn reaching(&self, bb: BlockId, obj: u32) -> HashSet<ValueId> {
        self.reach_in[bb.0 as usize]
            .get(&obj)
            .cloned()
            .unwrap_or_default()
    }

    /// How much smaller the flow-sensitive def-set at `bb` is compared to
    /// the flow-insensitive set `all_defs` (1.0 = no gain).
    pub fn flow_sensitivity_gain(&self, bb: BlockId, obj: u32, all_defs: usize) -> f64 {
        if all_defs == 0 {
            return 1.0;
        }
        self.reaching(bb, obj).len() as f64 / all_defs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Ty};

    /// entry: v = x+1; branch; t: a = v+1 -> j; e: b = v+2 -> j; j: ret phi
    fn diamond_with_shared_value() -> (Function, ValueId) {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x = b.func().arg(0);
        let one = b.const_i64(1);
        let v = b.add(x, one);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(v, one);
        b.jmp(j);
        b.switch_to(e);
        let two = b.const_i64(2);
        let bb = b.add(v, two);
        b.jmp(j);
        b.switch_to(j);
        let ph = b.phi(vec![(t, a), (e, bb)]);
        b.ret(Some(ph));
        (b.finish(), v)
    }

    #[test]
    fn value_used_in_both_arms_is_live_into_them() {
        let (f, v) = diamond_with_shared_value();
        let l = Liveness::compute(&f);
        assert!(l.live_in(BlockId(1)).contains(&v));
        assert!(l.live_in(BlockId(2)).contains(&v));
        assert!(!l.live_in(BlockId(3)).contains(&v), "dead after the arms");
        assert!(l.crosses_blocks(v));
        assert!(l.max_pressure() >= 1);
    }

    #[test]
    fn phi_operands_live_out_of_their_pred() {
        let (f, _) = diamond_with_shared_value();
        let l = Liveness::compute(&f);
        // The `a` computed in block t must be live out of t (used by the
        // phi along the t->j edge) …
        let a = f.block(BlockId(1)).insts[0];
        assert!(l.live_out(BlockId(1)).contains(&a));
        // … but not live into the other arm.
        assert!(!l.live_in(BlockId(2)).contains(&a));
    }

    #[test]
    fn straight_line_liveness_is_local() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let one = b.const_i64(1);
        let v = b.add(one, one);
        b.ret(Some(v));
        let f = b.finish();
        let l = Liveness::compute(&f);
        assert!(l.live_in(f.entry()).is_empty());
        assert_eq!(l.max_pressure(), 0);
    }

    #[test]
    fn reaching_stores_flow_sensitively() {
        // entry: store#1 obj0; br; t: store#2 obj0 -> j; e: (nothing) -> j
        // at j, {store#2, store#1} reach (store#1 via e).
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let slot = b.alloca(Ty::I64);
        let x = b.func().arg(0);
        let st1 = b.store(x, slot);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        let st2 = b.store(one, slot);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let v = b.load(slot);
        b.ret(Some(v));
        let f = b.finish();

        let rs = ReachingStores::compute(&f, |ptr| if ptr == slot { vec![0] } else { vec![] });
        let at_join = rs.reaching(BlockId(3), 0);
        assert!(at_join.contains(&st2), "then-arm store reaches the join");
        assert!(at_join.contains(&st1), "entry store survives the else arm");
        // Inside the then-arm, only the entry store has reached so far.
        let at_t = rs.reaching(BlockId(1), 0);
        assert_eq!(at_t.len(), 1);
        assert!(at_t.contains(&st1));
    }

    #[test]
    fn strong_update_kills_previous_defs() {
        // entry: store#1; store#2 (same single object); next: load.
        // Only store#2 reaches the next block.
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let next = b.new_block("next");
        let slot = b.alloca(Ty::I64);
        let one = b.const_i64(1);
        let two = b.const_i64(2);
        let _st1 = b.store(one, slot);
        let st2 = b.store(two, slot);
        b.jmp(next);
        b.switch_to(next);
        let v = b.load(slot);
        b.ret(Some(v));
        let f = b.finish();

        let rs = ReachingStores::compute(&f, |ptr| if ptr == slot { vec![0] } else { vec![] });
        let at_next = rs.reaching(BlockId(1), 0);
        assert_eq!(at_next.len(), 1, "strong update must kill store#1");
        assert!(at_next.contains(&st2));
    }

    #[test]
    fn gain_metric_bounded() {
        let (f, _) = diamond_with_shared_value();
        let rs = ReachingStores::compute(&f, |_| vec![]);
        assert_eq!(rs.flow_sensitivity_gain(BlockId(0), 0, 0), 1.0);
        assert_eq!(rs.flow_sensitivity_gain(BlockId(0), 0, 4), 0.0);
    }
}
