//! Live-variable analysis (backward dataflow).
//!
//! Not required by the paper's algorithms directly, but the machine-level
//! half of the paper ("to handle register spills at the machine code
//! generation level, we leverage the instrumented metadata ... to detect
//! additional encryption & authentication points", §5) is driven by
//! exactly this information: a vulnerable value live across many blocks is
//! a spill candidate, and every spill adds PA work under CPA. The cost
//! model consumes [`Liveness::max_pressure`] as its spill proxy.

use pythia_ir::{BlockId, Function, Inst, ValueId, ValueKind};
use std::collections::{HashMap, HashSet};

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<ValueId>>,
    live_out: Vec<HashSet<ValueId>>,
}

impl Liveness {
    /// Compute liveness for `f` with the standard backward fixpoint.
    ///
    /// Arguments and constants are excluded (they are rematerializable);
    /// only instruction results participate.
    pub fn compute(f: &Function) -> Self {
        let nb = f.num_blocks();
        // Per-block use/def (upward-exposed uses).
        let mut uses = vec![HashSet::new(); nb];
        let mut defs = vec![HashSet::new(); nb];
        let is_inst_value = |v: ValueId| matches!(f.value(v).kind, ValueKind::Inst(_));

        for bb in f.block_ids() {
            let b = bb.0 as usize;
            for &iv in &f.block(bb).insts {
                if let Some(inst) = f.inst(iv) {
                    // Phi operands are uses on the incoming *edge*, not in
                    // this block; the fixpoint handles them per-successor.
                    if !matches!(inst, Inst::Phi { .. }) {
                        for op in inst.operands() {
                            if is_inst_value(op) && !defs[b].contains(&op) {
                                uses[b].insert(op);
                            }
                        }
                    }
                    defs[b].insert(iv);
                }
            }
        }

        let mut live_in = vec![HashSet::new(); nb];
        let mut live_out = vec![HashSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for bb in f.block_ids().rev_order() {
                let b = bb.0 as usize;
                let mut out: HashSet<ValueId> = HashSet::new();
                for s in f.successors(bb) {
                    out.extend(live_in[s.0 as usize].iter().copied());
                    // Phi uses are live on the edge: a phi in the successor
                    // using a value from *this* block keeps it live here.
                    for &iv in &f.block(s).insts {
                        if let Some(Inst::Phi { incomings }) = f.inst(iv) {
                            for (pred, v) in incomings {
                                if *pred == bb && is_inst_value(*v) {
                                    out.insert(*v);
                                }
                            }
                        }
                    }
                }
                let mut inn: HashSet<ValueId> = uses[b].clone();
                for v in &out {
                    if !defs[b].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Values live on entry to `bb`.
    pub fn live_in(&self, bb: BlockId) -> &HashSet<ValueId> {
        &self.live_in[bb.0 as usize]
    }

    /// Values live on exit from `bb`.
    pub fn live_out(&self, bb: BlockId) -> &HashSet<ValueId> {
        &self.live_out[bb.0 as usize]
    }

    /// Whether `v` is live across (into) any block other than its own —
    /// the cheap spill-candidate predicate.
    pub fn crosses_blocks(&self, v: ValueId) -> bool {
        self.live_in.iter().any(|s| s.contains(&v))
    }

    /// Maximum number of simultaneously block-live values — a crude
    /// register-pressure proxy.
    pub fn max_pressure(&self) -> usize {
        self.live_in.iter().map(HashSet::len).max().unwrap_or(0)
    }
}

/// Iteration helper: blocks in reverse id order (a decent approximation of
/// post-order for builder-produced CFGs, good enough for fixpoints).
trait RevOrder {
    fn rev_order(self) -> Vec<BlockId>;
}

impl<I: Iterator<Item = BlockId>> RevOrder for I {
    fn rev_order(self) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self.collect();
        v.reverse();
        v
    }
}

/// Flow-sensitive reaching definitions over *memory objects*.
///
/// For each block and each object, which store instructions may reach its
/// entry. This is the textbook analysis behind DFI's static def-sets
/// (Castro et al. compute it with their "reaching definitions analysis");
/// our DFI pass uses the cheaper flow-insensitive object sets, and this
/// analysis exists to *measure* how much precision that costs
/// (see `flow_sensitivity_gain`).
#[derive(Debug, Clone)]
pub struct ReachingStores {
    /// block -> object -> set of store instruction values
    reach_in: Vec<HashMap<u32, HashSet<ValueId>>>,
}

impl ReachingStores {
    /// Compute for one function. `objects_of` maps a store's pointer to
    /// the object ids it may write (points-to abstraction, supplied by
    /// the caller so this module stays independent of the alias crate).
    pub fn compute(f: &Function, objects_of: impl Fn(ValueId) -> Vec<u32>) -> Self {
        let nb = f.num_blocks();
        // gen/kill per block, object-indexed. A store *generates* itself
        // for each object it may write; it only *kills* when it writes a
        // single object (strong update).
        let mut gen_sets: Vec<HashMap<u32, HashSet<ValueId>>> = vec![HashMap::new(); nb];
        for bb in f.block_ids() {
            let b = bb.0 as usize;
            for &iv in &f.block(bb).insts {
                if let Some(Inst::Store { ptr, .. }) = f.inst(iv) {
                    let objs = objects_of(*ptr);
                    let strong = objs.len() == 1;
                    for o in objs {
                        let entry = gen_sets[b].entry(o).or_default();
                        if strong {
                            entry.clear();
                        }
                        entry.insert(iv);
                    }
                }
            }
        }

        let preds = f.predecessors();
        let mut reach_in: Vec<HashMap<u32, HashSet<ValueId>>> = vec![HashMap::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for bb in f.block_ids() {
                let b = bb.0 as usize;
                let mut inn: HashMap<u32, HashSet<ValueId>> = HashMap::new();
                for p in &preds[b] {
                    let pb = p.0 as usize;
                    // out[p] = gen[p] ∪ (in[p] minus strong kills); our gen
                    // already applied strong updates block-locally, so
                    // out[p][o] = gen[p][o] if the block writes o strongly,
                    // else in[p][o] ∪ gen[p][o].
                    let mut seen: HashSet<u32> = HashSet::new();
                    for (o, g) in &gen_sets[pb] {
                        inn.entry(*o).or_default().extend(g.iter().copied());
                        seen.insert(*o);
                    }
                    for (o, r) in &reach_in[pb] {
                        // Strong kill: a single-object store replaces all
                        // prior defs of that object within its block.
                        let strongly_redefined = seen.contains(o)
                            && gen_sets[pb].get(o).map(|g| g.len() == 1).unwrap_or(false);
                        if !strongly_redefined {
                            inn.entry(*o).or_default().extend(r.iter().copied());
                        }
                    }
                }
                if inn != reach_in[b] {
                    reach_in[b] = inn;
                    changed = true;
                }
            }
        }
        ReachingStores { reach_in }
    }

    /// Stores of `obj` that may reach the entry of `bb`.
    pub fn reaching(&self, bb: BlockId, obj: u32) -> HashSet<ValueId> {
        self.reach_in[bb.0 as usize]
            .get(&obj)
            .cloned()
            .unwrap_or_default()
    }

    /// How much smaller the flow-sensitive def-set at `bb` is compared to
    /// the flow-insensitive set `all_defs` (1.0 = no gain).
    pub fn flow_sensitivity_gain(&self, bb: BlockId, obj: u32, all_defs: usize) -> f64 {
        if all_defs == 0 {
            return 1.0;
        }
        self.reaching(bb, obj).len() as f64 / all_defs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{CmpPred, FunctionBuilder, Ty};

    /// entry: v = x+1; branch; t: a = v+1 -> j; e: b = v+2 -> j; j: ret phi
    fn diamond_with_shared_value() -> (Function, ValueId) {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let x = b.func().arg(0);
        let one = b.const_i64(1);
        let v = b.add(x, one);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(v, one);
        b.jmp(j);
        b.switch_to(e);
        let two = b.const_i64(2);
        let bb = b.add(v, two);
        b.jmp(j);
        b.switch_to(j);
        let ph = b.phi(vec![(t, a), (e, bb)]);
        b.ret(Some(ph));
        (b.finish(), v)
    }

    #[test]
    fn value_used_in_both_arms_is_live_into_them() {
        let (f, v) = diamond_with_shared_value();
        let l = Liveness::compute(&f);
        assert!(l.live_in(BlockId(1)).contains(&v));
        assert!(l.live_in(BlockId(2)).contains(&v));
        assert!(!l.live_in(BlockId(3)).contains(&v), "dead after the arms");
        assert!(l.crosses_blocks(v));
        assert!(l.max_pressure() >= 1);
    }

    #[test]
    fn phi_operands_live_out_of_their_pred() {
        let (f, _) = diamond_with_shared_value();
        let l = Liveness::compute(&f);
        // The `a` computed in block t must be live out of t (used by the
        // phi along the t->j edge) …
        let a = f.block(BlockId(1)).insts[0];
        assert!(l.live_out(BlockId(1)).contains(&a));
        // … but not live into the other arm.
        assert!(!l.live_in(BlockId(2)).contains(&a));
    }

    #[test]
    fn straight_line_liveness_is_local() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let one = b.const_i64(1);
        let v = b.add(one, one);
        b.ret(Some(v));
        let f = b.finish();
        let l = Liveness::compute(&f);
        assert!(l.live_in(f.entry()).is_empty());
        assert_eq!(l.max_pressure(), 0);
    }

    #[test]
    fn reaching_stores_flow_sensitively() {
        // entry: store#1 obj0; br; t: store#2 obj0 -> j; e: (nothing) -> j
        // at j, {store#2, store#1} reach (store#1 via e).
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let slot = b.alloca(Ty::I64);
        let x = b.func().arg(0);
        let st1 = b.store(x, slot);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        let st2 = b.store(one, slot);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let v = b.load(slot);
        b.ret(Some(v));
        let f = b.finish();

        let rs = ReachingStores::compute(&f, |ptr| if ptr == slot { vec![0] } else { vec![] });
        let at_join = rs.reaching(BlockId(3), 0);
        assert!(at_join.contains(&st2), "then-arm store reaches the join");
        assert!(at_join.contains(&st1), "entry store survives the else arm");
        // Inside the then-arm, only the entry store has reached so far.
        let at_t = rs.reaching(BlockId(1), 0);
        assert_eq!(at_t.len(), 1);
        assert!(at_t.contains(&st1));
    }

    #[test]
    fn strong_update_kills_previous_defs() {
        // entry: store#1; store#2 (same single object); next: load.
        // Only store#2 reaches the next block.
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let next = b.new_block("next");
        let slot = b.alloca(Ty::I64);
        let one = b.const_i64(1);
        let two = b.const_i64(2);
        let _st1 = b.store(one, slot);
        let st2 = b.store(two, slot);
        b.jmp(next);
        b.switch_to(next);
        let v = b.load(slot);
        b.ret(Some(v));
        let f = b.finish();

        let rs = ReachingStores::compute(&f, |ptr| if ptr == slot { vec![0] } else { vec![] });
        let at_next = rs.reaching(BlockId(1), 0);
        assert_eq!(at_next.len(), 1, "strong update must kill store#1");
        assert!(at_next.contains(&st2));
    }

    #[test]
    fn gain_metric_bounded() {
        let (f, _) = diamond_with_shared_value();
        let rs = ReachingStores::compute(&f, |_| vec![]);
        assert_eq!(rs.flow_sensitivity_gain(BlockId(0), 0, 0), 1.0);
        assert_eq!(rs.flow_sensitivity_gain(BlockId(0), 0, 4), 0.0);
    }
}
