//! The module call graph: direct and (address-taken-resolved) indirect
//! edges, reachability from an entry point, and recursion detection via
//! Tarjan's strongly-connected components.
//!
//! Used by the CLI's `analyze` summary and by clients that want to bound
//! interprocedural work (e.g. limiting slicing to the reachable portion of
//! a module), and it documents the indirect-call resolution the points-to
//! analysis also uses: an indirect call may target any address-taken
//! function of matching arity.

use pythia_ir::{Callee, FuncId, Inst, Module, ValueKind};
use std::collections::HashSet;

/// The call graph of a module.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` — functions `f` may call (deduplicated, sorted).
    callees: Vec<Vec<FuncId>>,
    /// `callers[f]` — functions that may call `f`.
    callers: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Build the graph for `m`.
    pub fn build(m: &Module) -> Self {
        let n = m.functions().len();
        // Address-taken functions, for indirect-call resolution.
        let mut address_taken: Vec<FuncId> = Vec::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            for v in f.value_ids() {
                if let ValueKind::FuncAddr(t) = f.value(v).kind {
                    if !address_taken.contains(&t) {
                        address_taken.push(t);
                    }
                }
            }
        }

        let mut callees: Vec<HashSet<FuncId>> = vec![HashSet::new(); n];
        for fid in m.func_ids() {
            let f = m.func(fid);
            for bb in f.block_ids() {
                for &iv in &f.block(bb).insts {
                    if let Some(Inst::Call { callee, args }) = f.inst(iv) {
                        match callee {
                            Callee::Func(t) => {
                                callees[fid.0 as usize].insert(*t);
                            }
                            Callee::Indirect(_) => {
                                for &t in &address_taken {
                                    if m.func(t).params.len() == args.len() {
                                        callees[fid.0 as usize].insert(t);
                                    }
                                }
                            }
                            Callee::Intrinsic(_) => {}
                        }
                    }
                }
            }
        }

        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let callees: Vec<Vec<FuncId>> = callees
            .into_iter()
            .map(|s| {
                let mut v: Vec<FuncId> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        for fid in m.func_ids() {
            for &t in &callees[fid.0 as usize] {
                callers[t.0 as usize].push(fid);
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions `f` may call.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.0 as usize]
    }

    /// Functions that may call `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.0 as usize]
    }

    /// All functions reachable from `entry` (including `entry`).
    pub fn reachable_from(&self, entry: FuncId) -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut stack = vec![entry];
        while let Some(f) = stack.pop() {
            if seen.insert(f) {
                stack.extend(self.callees(f).iter().copied());
            }
        }
        seen
    }

    /// Strongly-connected components (Tarjan), in reverse topological
    /// order. Components with more than one member — or a self-loop —
    /// are recursion cycles.
    pub fn sccs(&self) -> Vec<Vec<FuncId>> {
        let n = self.callees.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<FuncId>> = Vec::new();

        // Iterative Tarjan with an explicit work stack of (node, child#).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut work: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&(v, ci)) = work.last() {
                if ci == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let kids = &self.callees[v];
                if ci < kids.len() {
                    work.last_mut().expect("non-empty").1 += 1;
                    let w = kids[ci].0 as usize;
                    if index[w] == usize::MAX {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack");
                            on_stack[w] = false;
                            comp.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Functions involved in recursion (a multi-member SCC or a self-call).
    pub fn recursive_functions(&self) -> HashSet<FuncId> {
        let mut out = HashSet::new();
        for comp in self.sccs() {
            if comp.len() > 1 {
                out.extend(comp);
            } else {
                let f = comp[0];
                if self.callees(f).contains(&f) {
                    out.insert(f);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{FunctionBuilder, Ty};

    /// main -> a -> b; b -> a (cycle); main -> c; orphan d.
    fn graph_module() -> Module {
        let mut m = Module::new("cg");
        // Pre-declare to get stable ids: a=0, b=1, c=2, d=3, main=4.
        let mut fa = FunctionBuilder::new("a", vec![], Ty::Void);
        let mut fb = FunctionBuilder::new("b", vec![], Ty::Void);
        let mut fc = FunctionBuilder::new("c", vec![], Ty::Void);
        let mut fd = FunctionBuilder::new("d", vec![], Ty::Void);
        // a calls b (id 1), b calls a (id 0), c/d call nothing.
        fa.call(FuncId(1), vec![], Ty::Void);
        fa.ret(None);
        fb.call(FuncId(0), vec![], Ty::Void);
        fb.ret(None);
        fc.ret(None);
        fd.ret(None);
        m.add_function(fa.finish());
        m.add_function(fb.finish());
        m.add_function(fc.finish());
        m.add_function(fd.finish());
        let mut fm = FunctionBuilder::new("main", vec![], Ty::Void);
        fm.call(FuncId(0), vec![], Ty::Void);
        fm.call(FuncId(2), vec![], Ty::Void);
        fm.ret(None);
        m.add_function(fm.finish());
        m
    }

    #[test]
    fn edges_and_callers() {
        let m = graph_module();
        let cg = CallGraph::build(&m);
        let main = m.func_by_name("main").unwrap();
        assert_eq!(cg.callees(main), &[FuncId(0), FuncId(2)]);
        assert_eq!(cg.callers(FuncId(0)), &[FuncId(1), main]);
        assert!(cg.callees(FuncId(3)).is_empty());
    }

    #[test]
    fn reachability_excludes_orphans() {
        let m = graph_module();
        let cg = CallGraph::build(&m);
        let main = m.func_by_name("main").unwrap();
        let r = cg.reachable_from(main);
        assert_eq!(r.len(), 4); // main, a, b, c
        assert!(!r.contains(&FuncId(3)), "d is unreachable");
    }

    #[test]
    fn scc_finds_the_mutual_recursion() {
        let m = graph_module();
        let cg = CallGraph::build(&m);
        let rec = cg.recursive_functions();
        assert_eq!(rec.len(), 2);
        assert!(rec.contains(&FuncId(0)) && rec.contains(&FuncId(1)));
        // SCCs are in reverse topological order: {a,b} appears before main.
        let sccs = cg.sccs();
        let ab_pos = sccs.iter().position(|c| c.len() == 2).unwrap();
        let main_pos = sccs
            .iter()
            .position(|c| c == &vec![m.func_by_name("main").unwrap()])
            .unwrap();
        assert!(ab_pos < main_pos);
    }

    #[test]
    fn self_recursion_detected() {
        let mut m = Module::new("selfrec");
        let mut f = FunctionBuilder::new("r", vec![Ty::I64], Ty::I64);
        let x = f.func().arg(0);
        let r = f.call(FuncId(0), vec![x], Ty::I64);
        f.ret(Some(r));
        m.add_function(f.finish());
        let cg = CallGraph::build(&m);
        assert!(cg.recursive_functions().contains(&FuncId(0)));
    }

    #[test]
    fn indirect_calls_link_address_taken_matching_arity() {
        let mut m = Module::new("ind");
        let mut t1 = FunctionBuilder::new("t1", vec![Ty::I64], Ty::Void);
        t1.ret(None);
        let mut t2 = FunctionBuilder::new("t2", vec![], Ty::Void); // wrong arity
        t2.ret(None);
        let t1id = m.add_function(t1.finish());
        let t2id = m.add_function(t2.finish());
        let mut main = FunctionBuilder::new("main", vec![], Ty::Void);
        let fp = main.func_addr(t1id);
        let _fp2 = main.func_addr(t2id); // address-taken but arity 0
        let one = main.const_i64(1);
        main.call_indirect(fp, vec![one], Ty::Void);
        main.ret(None);
        let mid = m.add_function(main.finish());
        let cg = CallGraph::build(&m);
        assert_eq!(cg.callees(mid), &[t1id], "only matching arity links");
    }

    #[test]
    fn calls_in_dead_blocks_still_produce_edges() {
        // The builder walks every block, reachable or not, so a call that
        // only appears in CFG-dead code is an edge. That is the
        // conservative choice the summary solver's bottom-up order relies
        // on: a dead-block call must not be able to reorder SCCs between
        // a pruned and an unpruned build.
        let mut m = Module::new("deadcall");
        let mut callee = FunctionBuilder::new("callee", vec![], Ty::Void);
        callee.ret(None);
        let cid = m.add_function(callee.finish());
        let mut f = FunctionBuilder::new("f", vec![], Ty::Void);
        let dead = f.new_block("dead");
        f.ret(None); // entry terminates; `dead` has no predecessor
        f.switch_to(dead);
        f.call(cid, vec![], Ty::Void);
        f.ret(None);
        let fid = m.add_function(f.finish());
        let cg = CallGraph::build(&m);
        assert_eq!(cg.callees(fid), &[cid]);
        assert_eq!(cg.callers(cid), &[fid]);
    }

    #[test]
    fn scc_order_is_bottom_up_and_deterministic() {
        // d <- c <- {a <-> b} <- main, plus self-loop s. The component
        // list must be usable as a bottom-up summary order: every callee
        // outside a component appears in an earlier component. Building
        // twice yields the identical order (the solver's summary cache
        // keys on it).
        let mut m = Module::new("order");
        let mut fa = FunctionBuilder::new("a", vec![], Ty::Void); // id 0
        let mut fb = FunctionBuilder::new("b", vec![], Ty::Void); // id 1
        let mut fc = FunctionBuilder::new("c", vec![], Ty::Void); // id 2
        let mut fd = FunctionBuilder::new("d", vec![], Ty::Void); // id 3
        let mut fs = FunctionBuilder::new("s", vec![], Ty::Void); // id 4
        fa.call(FuncId(1), vec![], Ty::Void); // a -> b
        fa.call(FuncId(2), vec![], Ty::Void); // a -> c
        fa.ret(None);
        fb.call(FuncId(0), vec![], Ty::Void); // b -> a (collapse {a,b})
        fb.ret(None);
        fc.call(FuncId(3), vec![], Ty::Void); // c -> d
        fc.ret(None);
        fd.ret(None);
        fs.call(FuncId(4), vec![], Ty::Void); // s -> s (self-loop)
        fs.ret(None);
        for f in [fa, fb, fc, fd, fs] {
            m.add_function(f.finish());
        }
        let mut fm = FunctionBuilder::new("main", vec![], Ty::Void);
        fm.call(FuncId(0), vec![], Ty::Void);
        fm.call(FuncId(4), vec![], Ty::Void);
        fm.ret(None);
        m.add_function(fm.finish());

        let cg = CallGraph::build(&m);
        let sccs = cg.sccs();
        // {a,b} collapse to one component; everything else is singleton.
        assert_eq!(sccs.len(), 5);
        assert!(sccs.contains(&vec![FuncId(0), FuncId(1)]));

        // Reverse topological = bottom-up: cross-component callees are
        // always in a strictly earlier component.
        let mut comp_of = vec![usize::MAX; m.functions().len()];
        for (i, comp) in sccs.iter().enumerate() {
            for &f in comp {
                comp_of[f.0 as usize] = i;
            }
        }
        for fid in m.func_ids() {
            for &t in cg.callees(fid) {
                if comp_of[t.0 as usize] != comp_of[fid.0 as usize] {
                    assert!(
                        comp_of[t.0 as usize] < comp_of[fid.0 as usize],
                        "callee fn{} not before caller fn{}",
                        t.0,
                        fid.0
                    );
                }
            }
        }
        // Self-loop s is recursive; the collapsed pair is too.
        let rec = cg.recursive_functions();
        assert_eq!(
            rec.len(),
            3,
            "expected exactly {{a, b, s}} recursive: {rec:?}"
        );
        assert!(rec.contains(&FuncId(4)));

        // Deterministic across rebuilds.
        assert_eq!(sccs, CallGraph::build(&m).sccs());
    }

    #[test]
    fn benchmarks_have_main_reaching_all_workers() {
        let m = pythia_workloads_shim();
        let cg = CallGraph::build(&m);
        let main = m.func_by_name("main").unwrap();
        assert_eq!(cg.reachable_from(main).len(), m.functions().len());
        assert!(cg.recursive_functions().is_empty());
    }

    /// A tiny main->workers module shaped like the generator output.
    fn pythia_workloads_shim() -> Module {
        let mut m = Module::new("shim");
        let mut w0 = FunctionBuilder::new("work_0", vec![Ty::I64], Ty::I64);
        let x = w0.func().arg(0);
        w0.ret(Some(x));
        let w0id = m.add_function(w0.finish());
        let mut fm = FunctionBuilder::new("main", vec![], Ty::I64);
        let one = fm.const_i64(1);
        let r = fm.call(w0id, vec![one], Ty::I64);
        fm.ret(Some(r));
        m.add_function(fm.finish());
        m
    }
}
