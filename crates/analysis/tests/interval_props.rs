//! Property tests for the relational (difference-bounds) layer of the
//! interval domain: `v ≤ w + k` facts must survive phi joins with the
//! weaker offset, compose with signed and unsigned guards, and never
//! under-approximate a concretely reachable value.

use proptest::prelude::*;
use pythia_analysis::value_ranges;
use pythia_ir::{CmpPred, FunctionBuilder, Ty};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A diamond writes `v = w + c1` on one arm and `v = w + c2` on the
    /// other; after the join only the *weaker* bound `v ≤ w + max(c1,c2)`
    /// may survive. A later guard `w < n` then pins the substituted upper
    /// bound to exactly `n - 1 + max(c1, c2)` — plain intervals cannot see
    /// this because `v` was computed while `w` was still unbounded.
    #[test]
    fn phi_join_keeps_the_weaker_difference_bound(
        c1 in -1000i64..1000,
        c2 in -1000i64..1000,
        n in -1000i64..1000,
        w0 in -100_000i64..100_000,
        take_first in 0u8..2,
    ) {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let b1 = b.new_block("b1");
        let b2 = b.new_block("b2");
        let join = b.new_block("join");
        let guarded = b.new_block("guarded");
        let out = b.new_block("out");
        let w = b.func().arg(0);
        let s = b.func().arg(1);
        let zero = b.const_i64(0);
        let cs = b.icmp(CmpPred::Slt, s, zero);
        b.br(cs, b1, b2);
        b.switch_to(b1);
        let k1 = b.const_i64(c1);
        let v1 = b.add(w, k1);
        b.jmp(join);
        b.switch_to(b2);
        let k2 = b.const_i64(c2);
        let v2 = b.add(w, k2);
        b.jmp(join);
        b.switch_to(join);
        let v = b.phi(vec![(b1, v1), (b2, v2)]);
        let nc = b.const_i64(n);
        let cg = b.icmp(CmpPred::Slt, w, nc);
        b.br(cg, guarded, out);
        b.switch_to(guarded);
        let u = b.add(v, zero);
        b.ret(Some(u));
        b.switch_to(out);
        b.ret(Some(zero));
        let f = b.finish();

        let r = value_ranges(&f);
        prop_assert!(r.converged());
        let range = r.range_before(&f, u, v);

        // Precision: the join must keep exactly max(c1, c2), not the
        // stronger (unsound) min and not drop the relation entirely.
        prop_assert_eq!(range.hi, n - 1 + c1.max(c2), "c1={} c2={} n={}", c1, c2, n);
        prop_assert_eq!(range.lo, i64::MIN);

        // Soundness against a concrete run that reaches `guarded`.
        if w0 < n {
            let v_conc = if take_first == 1 { w0 + c1 } else { w0 + c2 };
            prop_assert!(
                range.lo <= v_conc && v_conc <= range.hi,
                "concrete v={} escapes [{}, {}]",
                v_conc, range.lo, range.hi
            );
        }
    }

    /// Mixed guard chain: `lim ≥ 0` (signed), `i <u lim` (unsigned,
    /// records `i ≤ lim - 1` because the bound is provably non-negative),
    /// then `lim < n` (signed, against a constant). Substituting the
    /// difference bound at the use point yields exactly `i ∈ [0, n - 2]`.
    #[test]
    fn unsigned_guard_composes_with_signed_clamp(
        n in 2i64..4096,
        i0 in 0i64..100_000,
        lim0 in 0i64..100_000,
    ) {
        let mut b = FunctionBuilder::new("g", vec![Ty::I64, Ty::I64], Ty::I64);
        let mid = b.new_block("mid");
        let inner = b.new_block("inner");
        let usebb = b.new_block("usebb");
        let out = b.new_block("out");
        let i = b.func().arg(0);
        let lim = b.func().arg(1);
        let zero = b.const_i64(0);
        let cg = b.icmp(CmpPred::Sge, lim, zero);
        b.br(cg, mid, out);
        b.switch_to(mid);
        let cu = b.icmp(CmpPred::Ult, i, lim);
        b.br(cu, inner, out);
        b.switch_to(inner);
        let nc = b.const_i64(n);
        let cs = b.icmp(CmpPred::Slt, lim, nc);
        b.br(cs, usebb, out);
        b.switch_to(usebb);
        let u = b.add(i, zero);
        b.ret(Some(u));
        b.switch_to(out);
        b.ret(Some(zero));
        let f = b.finish();

        let r = value_ranges(&f);
        prop_assert!(r.converged());
        let range = r.range_before(&f, u, i);
        prop_assert_eq!(range.lo, 0);
        prop_assert_eq!(range.hi, n - 2, "n={}", n);

        // Any concrete (i0, lim0) that passes all three guards must land
        // inside the derived range.
        if lim0 >= 0 && (i0 as u64) < (lim0 as u64) && lim0 < n {
            prop_assert!(range.lo <= i0 && i0 <= range.hi);
        }
    }

    /// A negative-capable unsigned bound supports no refinement: with no
    /// `lim ≥ 0` pre-guard the `i <u lim` edge must record nothing — a
    /// signed-negative `lim` reinterprets as a huge unsigned bound, so
    /// deriving `i ≤ lim - 1` (or any interval clamp) would be unsound.
    #[test]
    fn unsigned_guard_without_nonneg_bound_is_dropped(
        n in 2i64..4096,
    ) {
        let mut b = FunctionBuilder::new("h", vec![Ty::I64, Ty::I64], Ty::I64);
        let inner = b.new_block("inner");
        let usebb = b.new_block("usebb");
        let out = b.new_block("out");
        let i = b.func().arg(0);
        let lim = b.func().arg(1);
        let zero = b.const_i64(0);
        let cu = b.icmp(CmpPred::Ult, i, lim);
        b.br(cu, inner, out);
        b.switch_to(inner);
        let nc = b.const_i64(n);
        let cs = b.icmp(CmpPred::Slt, lim, nc);
        b.br(cs, usebb, out);
        b.switch_to(usebb);
        let u = b.add(i, zero);
        b.ret(Some(u));
        b.switch_to(out);
        b.ret(Some(zero));
        let f = b.finish();

        let r = value_ranges(&f);
        prop_assert!(r.converged());
        let range = r.range_before(&f, u, i);
        // i = -5, lim = -1 passes both guards (unsigned -5 < unsigned -1,
        // and -1 < n), so any finite bound on i would exclude it.
        prop_assert!(range.is_full(), "unsound refinement: [{}, {}]", range.lo, range.hi);
    }
}
