//! The nginx experiment (paper §6.3): instrument the server module with
//! each scheme and measure multi-worker throughput degradation.
//!
//! Run with: `cargo run --release --example nginx_bench [-- <requests>]`

use pythia::analysis::{SliceContext, VulnerabilityReport};
use pythia::core::{instrument_with, Scheme};
use pythia::workloads::{nginx_module, run_workers};

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let threads = 12; // the paper's workload generator uses 12 threads
    println!("nginx-sim: {requests} requests x {threads} workers\n");

    let module = nginx_module(requests);
    let ctx = SliceContext::new(&module);
    let report = VulnerabilityReport::analyze(&ctx);

    let mut base = 0.0;
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "scheme", "bytes", "throughput", "slowdown"
    );
    for scheme in [Scheme::Vanilla, Scheme::Cpa, Scheme::Pythia, Scheme::Dfi] {
        let inst = instrument_with(&module, &ctx, &report, scheme);
        let run = match run_workers(&inst.module, threads, 0x1234) {
            Ok(run) => run,
            Err(e) => {
                println!("{:<8} ERROR: {e}", scheme.name());
                continue;
            }
        };
        let tp = run.throughput();
        if scheme == Scheme::Vanilla {
            base = tp;
        }
        println!(
            "{:<8} {:>12} {:>12.2} {:>+9.1}%",
            scheme.name(),
            run.bytes,
            tp,
            if base > 0.0 {
                (1.0 - tp / base) * 100.0
            } else {
                0.0
            },
        );
    }
    println!("\npaper reference: CPA degrades nginx by 49.13%, Pythia by 20.15%");
}
