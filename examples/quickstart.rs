//! Quickstart: build a vulnerable program, bend its branch with a buffer
//! overflow, then let each protection scheme catch the attack.
//!
//! Run with: `cargo run --example quickstart`

use pythia::core::{adjudicate, instrument, Scheme, VmConfig};
use pythia::ir::{printer, CmpPred, FunctionBuilder, Intrinsic, Module, Ty};
use pythia::vm::{AttackSpec, InputPlan};
use pythia::workloads::Scenario;

fn main() {
    // -----------------------------------------------------------------
    // 1. Build a tiny vulnerable program in PIR: a `gets` into an 8-byte
    //    buffer sits right below an `is_admin` flag.
    // -----------------------------------------------------------------
    let mut module = Module::new("quickstart");
    let fmt = module.add_str_global("fmt", "%d");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let buf = b.alloca(Ty::array(Ty::I8, 8));
    let is_admin = b.alloca(Ty::I64);
    let zero = b.const_i64(0);
    // verify_user: the flag legitimately comes from an input channel
    // (benign plans below always answer 0 = not admin).
    let fmt_addr = b.global_addr(fmt, Ty::array(Ty::I8, 3));
    b.call_intrinsic(Intrinsic::Scanf, vec![fmt_addr, is_admin], Ty::I64);
    b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
    let flag = b.load(is_admin);
    let one = b.const_i64(1);
    let cond = b.icmp(CmpPred::Eq, flag, one);
    let (su, user) = (b.new_block("super"), b.new_block("user"));
    b.br(cond, su, user);
    b.switch_to(su);
    b.ret(Some(one)); // privileged path
    b.switch_to(user);
    b.ret(Some(zero));
    module.add_function(b.finish());

    println!("=== the program ===\n{}", printer::print_module(&module));

    // -----------------------------------------------------------------
    // 2. Wrap it into a scenario: benign inputs fit the buffer; the
    //    attack delivers 24 bytes of 0x...01 through the same channel.
    // -----------------------------------------------------------------
    let scenario = Scenario {
        name: "quickstart",
        description: "gets() overflow flips is_admin",
        module,
        benign: {
            let mut p = InputPlan::benign(42);
            p.set_scan_range(0, 0);
            p
        },
        attack: {
            // scanf is channel #0, gets is #1; overflow the gets.
            let mut p = InputPlan::with_attack(42, AttackSpec::aimed(1, 24, 1));
            p.set_scan_range(0, 0);
            p
        },
        normal_return: 0,
        bent_return: 1,
    };

    // -----------------------------------------------------------------
    // 3. Adjudicate under every scheme.
    // -----------------------------------------------------------------
    let cfg = VmConfig::default();
    println!("=== outcomes ===");
    for scheme in Scheme::ALL {
        let o = match adjudicate(&scenario, scheme, &cfg) {
            Ok(o) => o,
            Err(e) => {
                println!("{:8}  ERROR: {e}", scheme.name());
                continue;
            }
        };
        let verdict = if o.bent {
            "ATTACK SUCCEEDED (branch bent)".to_owned()
        } else if let Some(m) = o.detected {
            format!("attack DETECTED by {m:?}")
        } else {
            format!("attack stopped: {:?}", o.attack_exit)
        };
        println!(
            "{:8}  benign: {}  |  {}",
            scheme.name(),
            if o.benign_ok { "ok" } else { "BROKEN" },
            verdict
        );
    }

    // -----------------------------------------------------------------
    // 4. Show what the Pythia pass actually did.
    // -----------------------------------------------------------------
    let inst = instrument(&scenario.module, Scheme::Pythia);
    println!(
        "\nPythia instrumentation: {} -> {} instructions, {} canaries, {} PA ops, {} randomize sites",
        inst.stats.insts_before,
        inst.stats.insts_after,
        inst.stats.canaries,
        inst.stats.pa_total(),
        inst.stats.randomize_sites,
    );
}
