//! A tour of the textual PIR format: write a program as text, parse it,
//! analyze it, optimize it, instrument it, and diff the instrumented form.
//!
//! Run with: `cargo run --example textual_ir`

use pythia::analysis::{SliceContext, SliceMode};
use pythia::ir::{parser, printer};
use pythia::passes::{instrument, optimize_module, Scheme};

const PROGRAM: &str = r#"
module "tour"

global @fmt : [3 x i8] = str "%d" const

func @main() -> i64 {
bb0:
  %0 = alloca [8 x i8] x 1          ; request buffer (attacker-facing)
  %1 = alloca i64 x 1               ; privilege flag
  %2 = call! scanf(@fmt, %1) : i64  ; verify_user(...)
  %3 = call! gets(%0) : i8*         ; the vulnerable read
  %4 = load %1 : i64
  %5 = add 2:i64, 3:i64 : i64       ; constant slack for the optimizer
  %6 = mul %5, 0:i64 : i64          ; ... which folds to 0
  %7 = add %4, %6 : i64
  %8 = icmp eq %7, 1:i64
  br %8, bb1, bb2
bb1:
  ret 1:i64                         ; privileged path
bb2:
  ret 0:i64
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse and verify.
    let module = parser::parse_module(PROGRAM)?;
    pythia::ir::verify::verify_module(&module).map_err(|e| format!("{e:?}"))?;
    println!("=== parsed back ===\n{}", printer::print_module(&module));

    // Slice the privilege branch.
    let ctx = SliceContext::new(&module);
    let fid = module.func_by_name("main").expect("main exists");
    let branch = ctx.branches_in(fid)[0];
    let slice = ctx.backward_slice(fid, branch, SliceMode::Pythia);
    println!(
        "backward slice of the branch: {} values, {} memory objects, {} tainting channel(s)",
        slice.values.len(),
        slice.objects.len(),
        slice.tainting_ics.len()
    );
    for ic in &slice.tainting_ics {
        println!("  tainted by {} ({})", ic.intrinsic, ic.category);
    }

    // Optimize: the constant slack folds away and x+0 collapses into a
    // plain use of the load.
    let mut optimized = module.clone();
    let stats = optimize_module(&mut optimized);
    println!(
        "\noptimizer: folded {}, dce {}, branches {}",
        stats.folded, stats.dce_removed, stats.branches_folded
    );

    // Instrument with Pythia and show what was added.
    let inst = instrument(&optimized, Scheme::Pythia);
    println!(
        "\n=== pythia-instrumented ({} -> {} insts, {} canaries) ===\n{}",
        inst.stats.insts_before,
        inst.stats.insts_after,
        inst.stats.canaries,
        printer::print_module(&inst.module)
    );
    Ok(())
}
