//! Attack lab: replay the paper's three motivating attacks (Listings 1–3)
//! against every protection scheme, then play the canary brute-forcing
//! game of §4.4.
//!
//! Run with: `cargo run --release --example attack_lab`

use pythia::core::{adjudicate, Scheme, VmConfig};
use pythia::pa::pac::PacConfig;
use pythia::pa::{brute_force_probability, expected_tries, simulate_brute_force, PaContext};
use pythia::workloads::all_scenarios;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let cfg = VmConfig::default();

    println!("=== Listings 1-3 under each scheme ===");
    for scenario in all_scenarios() {
        println!("\n{} — {}", scenario.name, scenario.description);
        for scheme in Scheme::ALL {
            let o = match adjudicate(&scenario, scheme, &cfg) {
                Ok(o) => o,
                Err(e) => {
                    println!("  {:8} -> ERROR: {e}", scheme.name());
                    continue;
                }
            };
            let verdict = if o.bent {
                "branch BENT — attack succeeded".to_owned()
            } else if let Some(m) = o.detected {
                format!("DETECTED by {m:?}")
            } else {
                format!("{:?}", o.attack_exit)
            };
            println!("  {:8} -> {}", scheme.name(), verdict);
        }
    }

    println!("\n=== canary brute-forcing (paper Eq. 6) ===");
    println!(
        "24-bit PAC: single-canary forge probability {:.3e} (1 in {:.0})",
        brute_force_probability(1, 24),
        expected_tries(24),
    );
    println!("playing the game at reduced widths (each wrong guess restarts the program):");
    let mut rng = SmallRng::seed_from_u64(7);
    for bits in [6u32, 8, 10, 12] {
        let ctx = PaContext::from_seed(1).with_config(PacConfig {
            va_bits: 40,
            pac_bits: bits,
        });
        let out = simulate_brute_force(&ctx, &mut rng, 1 << 20);
        println!(
            "  {bits:>2}-bit PAC: forged after {:>7} attempts (E[X] = {:>7.0})",
            out.tries,
            expected_tries(bits),
        );
    }
}
