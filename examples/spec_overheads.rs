//! Measure each protection scheme's runtime overhead on the SPEC-like
//! suite — a miniature of the paper's Fig. 4(a).
//!
//! Run with: `cargo run --release --example spec_overheads [-- <filter>]`

use pythia::core::{evaluate, Scheme, VmConfig};
use pythia::workloads::{generate, SPEC_PROFILES};

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let cfg = VmConfig::default();
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}  {:>8}",
        "benchmark", "vanilla", "cpa", "pythia", "dfi", "branches"
    );
    let mut sums = [0.0f64; 3];
    let mut n = 0usize;
    for p in SPEC_PROFILES.iter().filter(|p| p.name.contains(&filter)) {
        let module = generate(p);
        let ev = match evaluate(
            &module,
            &[Scheme::Cpa, Scheme::Pythia, Scheme::Dfi],
            p.seed,
            &cfg,
        ) {
            Ok(ev) => ev,
            Err(e) => {
                println!("{:<18} ERROR: {e}", p.name);
                continue;
            }
        };
        let base = ev
            .result(Scheme::Vanilla)
            .map(|r| r.metrics.cycles())
            .unwrap_or(0);
        let o = [
            ev.overhead(Scheme::Cpa),
            ev.overhead(Scheme::Pythia),
            ev.overhead(Scheme::Dfi),
        ];
        for (s, v) in sums.iter_mut().zip(o) {
            *s += v;
        }
        n += 1;
        println!(
            "{:<18} {:>8}c {:>+8.1}% {:>+8.1}% {:>+8.1}%  {:>8}",
            p.name,
            base,
            o[0] * 100.0,
            o[1] * 100.0,
            o[2] * 100.0,
            ev.analysis.branches,
        );
    }
    if n > 0 {
        println!(
            "{:<18} {:>9} {:>+8.1}% {:>+8.1}% {:>+8.1}%",
            "MEAN",
            "",
            sums[0] / n as f64 * 100.0,
            sums[1] / n as f64 * 100.0,
            sums[2] / n as f64 * 100.0,
        );
        println!("\npaper reference: CPA 47.88% avg (69.8% max), Pythia 13.07% avg (25.4% max)");
    }
}
