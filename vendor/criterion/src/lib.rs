//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal wall-clock benchmark harness with criterion's
//! surface API: [`Criterion`], [`criterion_group!`]/[`criterion_main!`],
//! benchmark groups, `iter`/`iter_batched`, and a name filter taken from
//! the command line (`cargo bench -- <substring>`). No statistics beyond
//! min/mean/max per sample set, no HTML reports.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the stub treats all sizes alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>, // ns per iteration
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Pick an iteration count that makes one sample take ~2 ms.
    fn calibrate<O>(f: &mut impl FnMut() -> O) -> u64 {
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64
    }

    /// Time `f`, the whole call measured.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let iters = Self::calibrate(&mut f);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = start.elapsed();
            self.samples.push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` only; `setup` runs untimed before every call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size.max(1) {
            // One sample = mean of a small, fixed batch, so the timer
            // overhead stays a minor fraction of each sample.
            const BATCH: usize = 64;
            let inputs: Vec<I> = (0..BATCH).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = start.elapsed();
            self.samples.push(dt.as_nanos() as f64 / BATCH as f64);
        }
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        return;
    }
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<48} time:   [{} {} {}]",
        human(min),
        human(mean),
        human(max)
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters by name; flag-like args
        // (--bench, --exact, …) from the harness protocol are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Set samples per benchmark (builder form).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b.samples);
    }

    /// Benchmark one closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override samples per benchmark within the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        if self.c.matches(&full) {
            let mut b = Bencher::new(self.sample_size.unwrap_or(self.c.sample_size));
            f(&mut b, input);
            report(&full, &b.samples);
        }
        self
    }

    /// Benchmark one closure within the group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        if self.c.matches(&full) {
            let mut b = Bencher::new(self.sample_size.unwrap_or(self.c.sample_size));
            f(&mut b);
            report(&full, &b.samples);
        }
        self
    }

    /// End the group (report output is immediate, nothing to flush).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $cfg;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
