//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface
//! syntax: the [`proptest!`] macro, range/tuple/`vec`/[`Just`]/
//! `prop_map`/[`prop_oneof!`] strategies, and `prop_assert*` macros.
//! Unlike real proptest there is **no shrinking** — a failing case is
//! reported as-is — but cases are generated deterministically per test
//! name, so failures reproduce.

use std::ops::Range;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut test_runner::TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from the macro-collected alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex strategies in proptest; the stub ignores
/// the pattern and yields printable ASCII up to 200 chars, which is what
/// the only in-repo user (`\PC{0,200}`, "any printable") asks for.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut test_runner::TestRng) -> String {
        let len = (rng.next_u64() % 201) as usize;
        (0..len)
            .map(|_| (0x20 + (rng.next_u64() % 0x5f) as u8) as char)
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

/// Collection strategies.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// A strategy yielding vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — as in real proptest.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.end > size.start, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-run configuration (`cases` is the only knob the repo uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic case generation.
pub mod test_runner {
    /// SplitMix64 seeded from the test's full path: deterministic across
    /// runs, different streams per property.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Rng for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; reported with the generated case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
