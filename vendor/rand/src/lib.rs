//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation: [`rngs::SmallRng`] is
//! a xoshiro256++ generator (the same family real `rand` 0.8 uses on
//! 64-bit targets), seeded through SplitMix64 exactly like
//! `SeedableRng::seed_from_u64` upstream. Streams differ from upstream
//! `rand`, but every consumer in this repository only relies on the
//! generator being deterministic per seed and statistically reasonable.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seedable generators (the subset of rand 0.8's trait we need).
pub trait SeedableRng: Sized {
    /// Build a generator from one 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Map 64 random bits to [0, 1).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniform ranges can be sampled over.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw in `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                (lo_w + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        assert!(hi > lo, "cannot sample from empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 state expansion, as rand's seed_from_u64 does.
            let mut next = || {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: u8 = r.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let f = r.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
            let neg = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
