#!/usr/bin/env bash
# Graceful-degradation gate: build, test, then smoke-run the reproduce
# binary and fail on any `internal` error — the one taxonomy variant that
# means the harness itself is broken (DESIGN.md, "Error taxonomy").
#
# `setup`/`fault`/`detection` statuses in the smoke JSON are data, not CI
# failures; they still flip reproduce's exit code, which this script
# reports but tolerates, so a hostile benchmark can't mask an internal bug.
#
# Usage: scripts/check.sh [out-dir]   (default: check-out)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-check-out}"
mkdir -p "$OUT"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== reproduce --smoke --bench-json =="
smoke_status=0
target/release/reproduce --smoke --bench-json --out "$OUT" >/dev/null || smoke_status=$?
JSON="$OUT/BENCH_suite.json"

if [ ! -f "$JSON" ]; then
    echo "FAIL: smoke run produced no $JSON" >&2
    exit 1
fi
if grep -q '"status": "internal"' "$JSON"; then
    echo "FAIL: internal error in smoke suite — harness bug:" >&2
    grep -B2 '"status": "internal"' "$JSON" >&2
    exit 1
fi
if [ "$smoke_status" -ne 0 ]; then
    # Non-internal failures (setup/fault/detection) are typed, reported,
    # and unexpected in the smoke set: surface them as a failure too.
    echo "FAIL: smoke suite had failing benchmarks (exit $smoke_status):" >&2
    grep '"status"' "$JSON" >&2
    exit 1
fi

echo "OK: build, tests and smoke suite are clean ($JSON)"
