#!/usr/bin/env bash
# Graceful-degradation gate: build, lint (clippy at -D warnings), test,
# statically certify every instrumented suite variant (pythia-lint), then
# smoke-run the reproduce binary and fail on any `internal` error — the
# one taxonomy variant that means the harness itself is broken
# (DESIGN.md, "Error taxonomy").
#
# `setup`/`fault`/`detection` statuses in the smoke JSON are data, not CI
# failures; they still flip reproduce's exit code, which this script
# reports but tolerates, so a hostile benchmark can't mask an internal bug.
#
# Usage: scripts/check.sh [out-dir]   (default: check-out)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-check-out}"
mkdir -p "$OUT"

echo "== cargo build --release --workspace =="
# --workspace: the root manifest is both a package and a workspace, so a
# bare `cargo build` would only build the root package — leaving the
# `reproduce` and `pythia-lint` binaries this script runs stale.
cargo build --release --workspace

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings) =="
# The analysis/passes/core crates carry #![warn(missing_docs)]; denying
# rustdoc warnings here turns a stale or missing doc into a CI failure.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test -q --workspace =="
# --workspace for the same reason as the build above: a bare `cargo
# test` from the root only tests the root package.
cargo test -q --workspace

echo "== pythia-lint --all-schemes =="
# Static certification gate: every suite benchmark, instrumented under
# every scheme, must satisfy all protection invariants (DESIGN.md §5c).
# Any diagnostic is fatal — a violation means a pass emitted unsound
# instrumentation, which would invalidate every downstream measurement.
target/release/pythia-lint --all-schemes

echo "== reproduce --smoke --bench-json --lint --profile =="
smoke_status=0
target/release/reproduce --smoke --bench-json --lint --profile --out "$OUT" >/dev/null || smoke_status=$?
JSON="$OUT/BENCH_suite.json"

if [ ! -f "$JSON" ]; then
    echo "FAIL: smoke run produced no $JSON" >&2
    exit 1
fi
if grep -q '"status": "internal"' "$JSON"; then
    echo "FAIL: internal error in smoke suite — harness bug:" >&2
    grep -B2 '"status": "internal"' "$JSON" >&2
    exit 1
fi
if [ "$smoke_status" -ne 0 ]; then
    # Non-internal failures (setup/fault/detection) are typed, reported,
    # and unexpected in the smoke set: surface them as a failure too.
    echo "FAIL: smoke suite had failing benchmarks (exit $smoke_status):" >&2
    grep '"status"' "$JSON" >&2
    exit 1
fi

if grep -q '"lint": "violated"' "$JSON"; then
    echo "FAIL: a smoke benchmark failed static certification:" >&2
    grep '"lint"' "$JSON" >&2
    exit 1
fi

# Profiler gates: the JSON must carry the profile schema, every
# PA-instrumented scheme must actually execute PA operations, and the
# profiler's static PA scan must agree with passes::stats everywhere.
if ! grep -q '"profile": {' "$JSON"; then
    echo "FAIL: smoke JSON lacks the profile block despite --profile" >&2
    exit 1
fi
if grep -E '"scheme": "(cpa|pythia)"' "$JSON" | grep -q '"pa_executed": 0'; then
    echo "FAIL: a PA-instrumented scheme executed zero PA operations:" >&2
    grep -E '"scheme": "(cpa|pythia)"' "$JSON" >&2
    exit 1
fi
if grep -q '"pa_static_match": false' "$JSON"; then
    echo "FAIL: profiler static PA scan disagrees with instrumentation stats:" >&2
    grep '"pa_static_match": false' "$JSON" >&2
    exit 1
fi

# Differential engine gate: the block-cached engine must be observation-
# preserving — one smoke pass per engine, rendered reports byte-identical.
# Everything a report can show (attack outcomes, metrics, overheads,
# profiles) goes through the VM, so a byte-identical report means the
# block engine reproduced every observable of the legacy interpreter.
echo "== engine differential gate (legacy vs block, smoke) =="
target/release/reproduce --smoke --engine legacy --out "$OUT/engine-legacy" >/dev/null || true
target/release/reproduce --smoke --engine block --out "$OUT/engine-block" >/dev/null || true
if ! diff -q "$OUT/engine-legacy/report.md" "$OUT/engine-block/report.md"; then
    echo "FAIL: legacy and block engines render different reports" >&2
    diff -u "$OUT/engine-legacy/report.md" "$OUT/engine-block/report.md" | head -50 >&2
    exit 1
fi
echo "OK: legacy and block engine reports are byte-identical"

# Precision-stage gate: the field-sensitive points-to + bounds-proof
# pruner must drop at least one obligation on at least one smoke
# benchmark (mcf prunes; lbm and nginx legitimately don't). A zero
# everywhere means the precision stage silently stopped firing — the
# pruned builds are still certified by pythia-lint's OPT-01 above.
if ! grep -qE '"obligations_pruned": [1-9]' "$JSON"; then
    echo "FAIL: no smoke benchmark pruned any obligation — precision stage inert:" >&2
    grep '"obligations_pruned"' "$JSON" >&2
    exit 1
fi

# Context-solver gates: the 1-CFA layer must prune Pythia heap-section
# obligations on at least one smoke benchmark (mcf prunes; lbm has no
# heap predicates and nginx legitimately doesn't), and no smoke
# benchmark may hit the solver's node-budget fallback — a fallback here
# means the budget regressed or the object remap diverged, silently
# degrading every context-derived proof to the insensitive relation.
if ! grep -qE '"pythia_heap_pruned": [1-9]' "$JSON"; then
    echo "FAIL: no smoke benchmark pruned a Pythia heap obligation — 1-CFA layer inert:" >&2
    grep '"pythia_heap_pruned"' "$JSON" >&2
    exit 1
fi
if grep -q '"ctx_fallback": true' "$JSON"; then
    echo "FAIL: the 1-CFA solver fell back to the insensitive relation on a smoke benchmark:" >&2
    grep '"ctx_fallback"' "$JSON" >&2
    exit 1
fi
if ! grep -qE '"contexts": [1-9]' "$JSON"; then
    echo "FAIL: the 1-CFA solver explored no calling contexts on the smoke set:" >&2
    grep '"contexts"' "$JSON" >&2
    exit 1
fi
echo "OK: context solver prunes heap obligations with zero budget fallbacks"

# Policy differential gate: the same smoke suite under the clone 1-CFA
# policy and the default summary 2-CFA policy (DESIGN.md §5j). The
# attack-outcome figures (fig7b branch coverage, dist attack distance,
# campaign detection rates) must be byte-identical across every policy —
# a sharper relation may only prune proof obligations, never change a
# detection. Overhead figures (fig4a etc.) legitimately shift with the
# policy: pruning removes instrumentation, which is the point. The
# per-benchmark pruned counts may only grow under the deeper policy,
# with zero budget fallbacks on either side. A PYTHIA_CTX_BUDGET=0 run
# must relabel itself "insensitive" and still render the same outcomes.
echo "== policy differential gate (1cfa vs summary-2cfa vs budget=0, smoke) =="
PYTHIA_CTX_POLICY=1cfa target/release/reproduce --smoke --bench-json \
    --out "$OUT/pol-1cfa" >/dev/null
PYTHIA_CTX_POLICY=summary-2cfa target/release/reproduce --smoke --bench-json \
    --out "$OUT/pol-summary" >/dev/null
PYTHIA_CTX_POLICY=summary-2cfa target/release/reproduce --smoke fig7b dist campaign \
    > "$OUT/pol-summary-attack.txt" 2>/dev/null
for pol_env in "PYTHIA_CTX_POLICY=1cfa" "PYTHIA_CTX_BUDGET=0" "PYTHIA_CTX_POLICY=objsens"; do
    env "$pol_env" target/release/reproduce --smoke fig7b dist campaign \
        > "$OUT/pol-attack-alt.txt" 2>/dev/null
    if ! diff -q "$OUT/pol-attack-alt.txt" "$OUT/pol-summary-attack.txt"; then
        echo "FAIL: $pol_env changed an attack outcome vs summary-2cfa" >&2
        diff -u "$OUT/pol-attack-alt.txt" "$OUT/pol-summary-attack.txt" | head -30 >&2
        exit 1
    fi
done
for pol in 1cfa summary; do
    PJ="$OUT/pol-$pol/BENCH_suite.json"
    if grep -q '"ctx_fallback": true' "$PJ"; then
        echo "FAIL: budget fallback under the $pol policy run:" >&2
        grep '"ctx_fallback"' "$PJ" >&2
        exit 1
    fi
done
if ! grep -q '"policy": "1cfa"' "$OUT/pol-1cfa/BENCH_suite.json"; then
    echo "FAIL: 1cfa run does not report policy=1cfa" >&2
    exit 1
fi
if ! grep -q '"policy": "summary-2cfa"' "$OUT/pol-summary/BENCH_suite.json"; then
    echo "FAIL: summary run does not report policy=summary-2cfa" >&2
    exit 1
fi
# Per-benchmark monotonicity: rows render in deterministic suite order,
# so a positional pairing of the pruned counters is exact.
if ! paste \
    <(grep -o '"obligations_pruned": [0-9]*' "$OUT/pol-1cfa/BENCH_suite.json" | grep -o '[0-9]*$') \
    <(grep -o '"obligations_pruned": [0-9]*' "$OUT/pol-summary/BENCH_suite.json" | grep -o '[0-9]*$') \
    | awk '$2 < $1 { bad = 1 } END { exit bad }'; then
    echo "FAIL: summary-2cfa pruned fewer obligations than 1cfa on a smoke benchmark" >&2
    exit 1
fi
PYTHIA_CTX_BUDGET=0 target/release/reproduce --smoke --bench-json \
    --out "$OUT/pol-insens" >/dev/null
if ! grep -q '"policy": "insensitive"' "$OUT/pol-insens/BENCH_suite.json"; then
    echo "FAIL: PYTHIA_CTX_BUDGET=0 run does not report policy=insensitive:" >&2
    grep '"policy"' "$OUT/pol-insens/BENCH_suite.json" >&2
    exit 1
fi
echo "OK: policies agree on every attack outcome; summary-2cfa pruning dominates 1cfa; budget=0 reports insensitive"

# Ref-tier gate: one fast benchmark at --tier ref through the streaming
# runner. The tier's bounded-loop array walks must give the interval
# analysis something to discharge — nonzero proven geps AND pruned
# obligations on the same benchmark — and the JSON must attest the
# streaming path actually ran (tier + runner fields).
echo "== ref-tier single-benchmark gate (lbm, streaming) =="
# The trailing `fig4a` section keeps the run suite-only: a bare
# invocation would render the full report's campaign/ablation sections,
# which dwarf the single benchmark this gate actually measures.
target/release/reproduce --only 519.lbm_r --tier ref --bench-json --out "$OUT/ref-gate" fig4a >/dev/null
REFJSON="$OUT/ref-gate/BENCH_suite.json"
if ! grep -q '"tier": "ref"' "$REFJSON"; then
    echo "FAIL: ref-tier run did not report tier=ref" >&2
    exit 1
fi
if ! grep -q '"runner": "streaming"' "$REFJSON"; then
    echo "FAIL: ref-tier run did not go through the streaming runner" >&2
    exit 1
fi
if ! grep -qE '"proven_geps": [1-9]' "$REFJSON"; then
    echo "FAIL: ref-tier lbm proved no gep bounds — walk generation or interval analysis inert:" >&2
    grep '"proven_geps"' "$REFJSON" >&2
    exit 1
fi
if ! grep -qE '"obligations_pruned": [1-9]' "$REFJSON"; then
    echo "FAIL: ref-tier lbm pruned no obligations despite proven geps:" >&2
    grep '"obligations_pruned"' "$REFJSON" >&2
    exit 1
fi
echo "OK: ref-tier lbm proves gep bounds and prunes obligations under the streaming runner"

# Server-scenario gate: a short event-loop run (DESIGN.md §5i) must
# retire requests, must detect at least one *in-window* attack under
# pythia (offset > 0 — the boundary bucket alone would mean the jitter
# model collapsed), and must finish with zero internal errors in every
# scheme's loop. The scenario exit code already reflects internal
# errors; the greps keep the gate honest against exit-code regressions.
echo "== server scenario smoke gate (event loop, timed window attacks) =="
target/release/reproduce --scenario server --connections 8 --requests 4000 \
    --out "$OUT/server" >/dev/null
SRVJSON="$OUT/server/BENCH_server.json"
if [ ! -f "$SRVJSON" ]; then
    echo "FAIL: server scenario produced no $SRVJSON" >&2
    exit 1
fi
if grep -qE '"internal_errors": [1-9]' "$SRVJSON"; then
    echo "FAIL: server scenario recorded internal errors:" >&2
    grep '"internal_errors"' "$SRVJSON" >&2
    exit 1
fi
if ! grep -qE '"retired": [1-9]' "$SRVJSON"; then
    echo "FAIL: server scenario retired no requests:" >&2
    grep '"retired"' "$SRVJSON" >&2
    exit 1
fi
pythia_hits=$(awk '/"scheme": "pythia"/{f=1} f && /"in_window_detections"/{gsub(/[^0-9]/,""); print; exit}' "$SRVJSON")
if [ -z "$pythia_hits" ] || [ "$pythia_hits" -eq 0 ]; then
    echo "FAIL: pythia detected no in-window attacks in the server scenario" >&2
    grep '"in_window_detections"' "$SRVJSON" >&2
    exit 1
fi
echo "OK: server scenario retires requests, pythia detects $pythia_hits in-window attacks, zero internal errors"

echo "OK: build, clippy, docs, tests, certification, smoke suite, engine differential, profiler, pruning, ref-tier and server-scenario gates are clean ($JSON)"
