#!/usr/bin/env bash
# Harness performance check: run the full suite serially and in parallel,
# verify the rendered reports are byte-identical, keep the parallel
# run's BENCH_suite.json (total + per-phase wall-clock, worker count),
# and show how the analysis/instrument/lint/execute phase breakdown
# shifts between the two runs (profile.md is per-run and excluded from
# the byte-identity check — wall-clock is not deterministic).
#
# Usage: scripts/bench.sh [out-dir]   (default: bench-out)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-bench-out}"
mkdir -p "$OUT"

cargo build --release -p pythia-bench
REPRODUCE=target/release/reproduce

now_ms() { date +%s%3N; }

echo "== serial (PYTHIA_THREADS=1) =="
start=$(now_ms)
PYTHIA_THREADS=1 "$REPRODUCE" --out "$OUT/serial" --bench-json --profile
serial_ms=$(( $(now_ms) - start ))

echo "== parallel (PYTHIA_THREADS unset: available cores) =="
start=$(now_ms)
"$REPRODUCE" --out "$OUT/parallel" --bench-json --profile
parallel_ms=$(( $(now_ms) - start ))

if ! diff -q "$OUT/serial/report.md" "$OUT/parallel/report.md"; then
    echo "FAIL: serial and parallel reports diverge" >&2
    diff -u "$OUT/serial/report.md" "$OUT/parallel/report.md" | head -50 >&2
    exit 1
fi
echo "OK: serial and parallel reports are byte-identical"

cp "$OUT/parallel/BENCH_suite.json" "$OUT/BENCH_suite.json"
awk -v s="$serial_ms" -v p="$parallel_ms" 'BEGIN {
    printf "serial: %.2fs  parallel: %.2fs  speedup: %.2fx\n",
        s / 1000, p / 1000, s / (p > 0 ? p : 1)
}'

# Per-phase CPU-time breakdown, serial vs parallel. The sums are taken
# across benchmarks inside each run, so parallel phases overlap in
# wall-clock but their per-phase totals stay comparable.
echo "== phase breakdown (summed across benchmarks, seconds) =="
echo "serial:   $(grep '"per_phase"' "$OUT/serial/BENCH_suite.json")"
echo "parallel: $(grep '"per_phase"' "$OUT/parallel/BENCH_suite.json")"
echo "timings: $OUT/BENCH_suite.json"
echo "profiles: $OUT/serial/profile.md $OUT/parallel/profile.md"

# Engine retirement-rate comparison: the block-cached engine must retire
# instructions >= 5x faster than the legacy interpreter on the smoke
# suite. One pair of runs is noise-bound on a shared single-CPU box
# (setup-heavy smoke runs bounce ~30%), so the gate takes the best ratio
# of three interleaved pairs — an engine regression shifts all three.
echo "== engine retirement rates (legacy vs block, smoke, best of 3) =="
best_ratio=0
for i in 1 2 3; do
    PYTHIA_THREADS=1 PYTHIA_ENGINE=legacy "$REPRODUCE" --smoke --bench-json --profile \
        --out "$OUT/retire-legacy" >/dev/null
    PYTHIA_THREADS=1 PYTHIA_ENGINE=block "$REPRODUCE" --smoke --bench-json --profile \
        --out "$OUT/retire-block" >/dev/null
    legacy_rate=$(grep -o '"retirement_minsts_per_sec": [0-9.]*' \
        "$OUT/retire-legacy/BENCH_suite.json" | head -1 | grep -o '[0-9.]*$')
    block_rate=$(grep -o '"retirement_minsts_per_sec": [0-9.]*' \
        "$OUT/retire-block/BENCH_suite.json" | head -1 | grep -o '[0-9.]*$')
    ratio=$(awk -v b="$block_rate" -v l="$legacy_rate" 'BEGIN { printf "%.2f", b / (l > 0 ? l : 1) }')
    echo "pair $i: legacy ${legacy_rate} Minsts/s  block ${block_rate} Minsts/s  ratio ${ratio}x"
    best_ratio=$(awk -v r="$ratio" -v b="$best_ratio" 'BEGIN { print (r > b) ? r : b }')
done
if awk -v r="$best_ratio" 'BEGIN { exit !(r < 5) }'; then
    echo "FAIL: block engine retirement rate is ${best_ratio}x legacy (< 5x) on the smoke suite" >&2
    exit 1
fi
echo "OK: block engine retires ${best_ratio}x faster than legacy (>= 5x gate)"

# Precision trend: the smoke suite under each context policy
# (PYTHIA_CTX_POLICY; insensitive is forced via PYTHIA_CTX_BUDGET=0),
# comparing summed analysis wall-clock against the obligations the
# sharper relation prunes (total and Pythia heap). This is where
# per-policy timing lives — report.md and profile.md stay wall-clock
# free so their byte-identity gates hold. Informational — the
# correctness gates (heap pruning fires, no budget fallback, outcome
# byte-identity across policies) live in scripts/check.sh.
echo "== precision trend (context policies, smoke, serial) =="
for mode in insensitive 1cfa summary-2cfa objsens; do
    if [ "$mode" = "insensitive" ]; then
        PYTHIA_THREADS=1 PYTHIA_CTX_BUDGET=0 "$REPRODUCE" --smoke --bench-json \
            --out "$OUT/prec-$mode" fig4a >/dev/null
    else
        PYTHIA_THREADS=1 PYTHIA_CTX_POLICY="$mode" "$REPRODUCE" --smoke --bench-json \
            --out "$OUT/prec-$mode" fig4a >/dev/null
    fi
    PJ="$OUT/prec-$mode/BENCH_suite.json"
    asecs=$(grep -o '"analysis": [0-9.]*' "$PJ" | grep -o '[0-9.]*$')
    pruned=$(grep -o '"obligations_pruned": [0-9]*' "$PJ" \
        | grep -o '[0-9]*$' | awk '{s+=$0} END {print s+0}')
    heap=$(grep -o '"pythia_heap_pruned": [0-9]*' "$PJ" \
        | grep -o '[0-9]*$' | awk '{s+=$0} END {print s+0}')
    kills=$(grep -o '"strong_updates": [0-9]*' "$PJ" \
        | grep -o '[0-9]*$' | awk '{s+=$0} END {print s+0}')
    printf "%-13s analysis %8ss  pruned %4s  heap-pruned %3s  kills %3s\n" \
        "$mode" "$asecs" "$pruned" "$heap" "$kills"
done

# Server-scenario throughput: the event-loop workload (DESIGN.md §5i)
# per engine. Wall requests/sec land on stderr (engine-dependent); the
# JSON is the determinism surface and must be byte-identical across
# engines — restart-based slicing and the attack injector included.
echo "== server scenario wall req/s (legacy vs block) =="
for eng in legacy block; do
    "$REPRODUCE" --scenario server --connections 8 --requests 4000 --engine "$eng" \
        --out "$OUT/server-$eng" >/dev/null 2> "$OUT/server-$eng.log"
    grep "wall req/s" "$OUT/server-$eng.log" | sed 's/^/  /'
done
if ! diff -q "$OUT/server-legacy/BENCH_server.json" "$OUT/server-block/BENCH_server.json"; then
    echo "FAIL: BENCH_server.json differs between engines" >&2
    diff -u "$OUT/server-legacy/BENCH_server.json" "$OUT/server-block/BENCH_server.json" | head -30 >&2
    exit 1
fi
echo "OK: BENCH_server.json is byte-identical across engines"

# Tier trend: one benchmark (mcf) at each size tier through the
# streaming runner, showing how total wall-clock and the analysis vs
# execute split move as the workload grows ~36x dynamic from smoke to
# ref. Informational — the correctness gates for the tiers live in
# scripts/check.sh and the crate tests.
echo "== tier trend (505.mcf_r at smoke/standard/ref, streaming) =="
for tier in smoke standard ref; do
    PYTHIA_THREADS=1 "$REPRODUCE" --only 505.mcf_r --tier "$tier" --bench-json \
        --out "$OUT/tier-$tier" fig4a >/dev/null
    TJ="$OUT/tier-$tier/BENCH_suite.json"
    total=$(grep -o '"total_secs": [0-9.]*' "$TJ" | grep -o '[0-9.]*$')
    ashare=$(grep -o '"analysis_share": [0-9.]*' "$TJ" | head -1 | grep -o '[0-9.]*$')
    eshare=$(grep -o '"execute_share": [0-9.]*' "$TJ" | head -1 | grep -o '[0-9.]*$')
    printf "%-9s total %8ss  analysis share %s  execute share %s\n" \
        "$tier" "$total" "$ashare" "$eshare"
done
