//! `pythia-cli` — work with textual PIR programs from the command line.
//!
//! ```text
//! pythia-cli print      <file.pir>                 parse, verify, pretty-print
//! pythia-cli analyze    <file.pir>                 vulnerability report
//! pythia-cli opt        <file.pir> [-o out.pir]    optimize (fold/DCE/simplify)
//! pythia-cli instrument <file.pir> --scheme S [-o out.pir]
//! pythia-cli run        <file.pir> [--seed N] [--entry F] [--arg V]... [--trace N]
//! pythia-cli attack     <file.pir> --ic N --len L [--value V] [--scheme S]
//! pythia-cli gen        <profile>  [-o out.pir]    emit a benchmark module
//! ```
//!
//! Schemes: `vanilla`, `cpa`, `pythia`, `dfi`.

use pythia::analysis::{SliceContext, VulnerabilityReport};
use pythia::ir::{parser, printer, verify, Module};
use pythia::passes::{instrument, optimize_module, Scheme};
use pythia::vm::{AttackSpec, InputPlan, Vm, VmConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "print" => cmd_print(rest),
        "analyze" => cmd_analyze(rest),
        "opt" => cmd_opt(rest),
        "instrument" => cmd_instrument(rest),
        "run" => cmd_run(rest),
        "attack" => cmd_attack(rest),
        "gen" => cmd_gen(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: pythia-cli <print|analyze|opt|instrument|run|attack|gen> ... (see --help)".to_owned()
}

/// Positional + `--flag value` argument scanning.
struct Opts<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, &'a str)>,
}

fn parse_opts(args: &[String]) -> Result<Opts<'_>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, v.as_str()));
            i += 2;
        } else if a == "-o" {
            let v = args.get(i + 1).ok_or("-o needs a value")?;
            flags.push(("out", v.as_str()));
            i += 2;
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok(Opts { positional, flags })
}

impl<'a> Opts<'a> {
    fn flag(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
    fn file(&self) -> Result<&'a str, String> {
        self.positional
            .first()
            .copied()
            .ok_or_else(|| "missing input file".to_owned())
    }
}

fn load(path: &str) -> Result<Module, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let m = parser::parse_module(&src).map_err(|e| format!("{path}: {e}"))?;
    if let Err(errs) = verify::verify_module(&m) {
        return Err(format!(
            "{path}: module does not verify: {}",
            errs.first().map(ToString::to_string).unwrap_or_default()
        ));
    }
    Ok(m)
}

fn emit(m: &Module, opts: &Opts<'_>) -> Result<(), String> {
    let text = printer::print_module(m);
    match opts.flag("out") {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn parse_scheme(s: Option<&str>) -> Result<Scheme, String> {
    match s.unwrap_or("pythia") {
        "vanilla" => Ok(Scheme::Vanilla),
        "cpa" => Ok(Scheme::Cpa),
        "pythia" => Ok(Scheme::Pythia),
        "dfi" => Ok(Scheme::Dfi),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

fn cmd_print(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let m = load(opts.file()?)?;
    emit(&m, &opts)
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let m = load(opts.file()?)?;
    let ctx = SliceContext::new(&m);
    let report = VulnerabilityReport::analyze(&ctx);
    println!("module            {}", m.name);
    println!("functions         {}", m.functions().len());
    println!("instructions      {}", m.num_insts());
    println!("branches          {}", report.num_branches());
    println!(
        "  unaffected      {:.1}%",
        report.effect_fraction(pythia::analysis::IcEffect::Unaffected) * 100.0
    );
    println!(
        "  direct          {:.1}%",
        report.effect_fraction(pythia::analysis::IcEffect::Direct) * 100.0
    );
    println!(
        "  indirect        {:.1}%",
        report.effect_fraction(pythia::analysis::IcEffect::Indirect) * 100.0
    );
    println!("input channels    {}", ctx.channels.total());
    println!(
        "vulnerable vars   cpa {:.1}%  pythia {:.1}%",
        report.cpa_value_fraction() * 100.0,
        report.pythia_value_fraction() * 100.0
    );
    println!(
        "stack/heap vulns  {} / {}",
        report.num_stack_vulns(),
        report.heap_vulns.len()
    );
    println!(
        "branches secured  pythia {:.1}%  dfi {:.1}%",
        report.pythia_secured_fraction() * 100.0,
        report.dfi_secured_fraction() * 100.0
    );
    println!(
        "attack distance   ic {:.1}  dfi {:.1}  pythia {:.1}",
        report.mean_ic_distance(),
        report.mean_dfi_distance(),
        report.mean_pythia_distance()
    );
    Ok(())
}

fn cmd_opt(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let mut m = load(opts.file()?)?;
    let stats = optimize_module(&mut m);
    eprintln!(
        "folded {} / dce {} / branches {} / dead blocks {}",
        stats.folded, stats.dce_removed, stats.branches_folded, stats.blocks_neutralized
    );
    emit(&m, &opts)
}

fn cmd_instrument(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let m = load(opts.file()?)?;
    let scheme = parse_scheme(opts.flag("scheme"))?;
    let inst = instrument(&m, scheme);
    eprintln!(
        "{}: {} -> {} instructions, {} PA ops, {} canaries, {} setdef/chkdef",
        scheme,
        inst.stats.insts_before,
        inst.stats.insts_after,
        inst.stats.pa_total(),
        inst.stats.canaries,
        inst.stats.dfi_total(),
    );
    emit(&inst.module, &opts)
}

fn vm_config(opts: &Opts<'_>) -> Result<VmConfig, String> {
    let mut cfg = VmConfig::default();
    if let Some(s) = opts.flag("seed") {
        cfg.seed = s.parse().map_err(|_| "bad --seed")?;
    }
    if let Some(t) = opts.flag("trace") {
        cfg.trace_limit = t.parse().map_err(|_| "bad --trace")?;
    }
    Ok(cfg)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let m = load(opts.file()?)?;
    let cfg = vm_config(&opts)?;
    let entry = opts.flag("entry").unwrap_or("main");
    let vm_args: Vec<i64> = opts
        .flags
        .iter()
        .filter(|(n, _)| *n == "arg")
        .map(|(_, v)| v.parse().map_err(|_| format!("bad --arg {v}")))
        .collect::<Result<_, _>>()?;
    let seed = cfg.seed;
    let mut vm = Vm::new(&m, cfg, InputPlan::benign(seed));
    let r = vm.run(entry, &vm_args).map_err(|e| e.to_string())?;
    println!("exit        {:?}", r.exit);
    println!("instructions {}", r.metrics.insts);
    println!("cycles      {}", r.metrics.cycles());
    println!("ipc         {:.2}", r.metrics.ipc());
    println!("pa ops      {}", r.metrics.pa_insts);
    println!("ic calls    {}", r.metrics.ic_calls);
    if !vm.trace().is_empty() {
        println!("--- trace ---");
        for e in vm.trace() {
            println!("{:>12}  {}::{}", e.mnemonic, m.func(e.func).name, e.value);
        }
    }
    Ok(())
}

fn cmd_attack(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let m = load(opts.file()?)?;
    let scheme = parse_scheme(opts.flag("scheme"))?;
    let ic: u64 = opts
        .flag("ic")
        .ok_or("--ic <n> required (which writing-channel execution)")?
        .parse()
        .map_err(|_| "bad --ic")?;
    let len: usize = opts
        .flag("len")
        .ok_or("--len <bytes> required")?
        .parse()
        .map_err(|_| "bad --len")?;
    let spec = match opts.flag("value") {
        Some(v) => AttackSpec::aimed(ic, len, v.parse().map_err(|_| "bad --value")?),
        None => AttackSpec::smash(ic, len),
    };
    let cfg = vm_config(&opts)?;
    let inst = instrument(&m, scheme);
    let seed = cfg.seed;
    let mut vm = Vm::new(&inst.module, cfg, InputPlan::with_attack(seed, spec));
    let r = vm
        .run(opts.flag("entry").unwrap_or("main"), &[])
        .map_err(|e| e.to_string())?;
    match r.detected() {
        Some(mech) => println!("DETECTED by {mech:?} ({:?})", r.exit),
        None => println!("not detected: {:?}", r.exit),
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let name = opts
        .positional
        .first()
        .ok_or("missing profile name (e.g. `gcc`, `519.lbm_r`, `nginx`)")?;
    let m = if *name == "nginx" {
        pythia::workloads::nginx_module(
            opts.flag("requests")
                .map(|r| r.parse().map_err(|_| "bad --requests"))
                .transpose()?
                .unwrap_or(60),
        )
    } else {
        let p = pythia::workloads::profile_by_name(name)
            .ok_or_else(|| format!("no profile matching `{name}`"))?;
        pythia::workloads::generate(p)
    };
    emit(&m, &opts)
}
