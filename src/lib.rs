//! # pythia — reproduction of "Pythia: Compiler-Guided Defense Against
//! Non-Control Data Attacks" (ASPLOS 2024)
//!
//! This umbrella crate re-exports the whole workspace so that examples and
//! downstream users need a single dependency:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`ir`] | `pythia-ir` | the PIR intermediate representation |
//! | [`analysis`] | `pythia-analysis` | slicing, points-to, vulnerability classification |
//! | [`pa`] | `pythia-pa` | software ARM Pointer Authentication |
//! | [`heap`] | `pythia-heap` | glibc-style allocator + sectioned heap |
//! | [`vm`] | `pythia-vm` | the executable machine & attacker model |
//! | [`passes`] | `pythia-passes` | CPA / Pythia / DFI instrumentation |
//! | [`lint`] | `pythia-lint` | static certification of instrumented modules |
//! | [`workloads`] | `pythia-workloads` | SPEC-like benchmarks, Listings 1–3, nginx-sim |
//! | [`core`] | `pythia-core` | the analyze→instrument→execute pipeline |
//! | [`profile`] | `pythia-vm` | execution observability: opcode/PA/heap profiles |
//!
//! # Examples
//!
//! Protect a vulnerable program and watch the attack get caught:
//!
//! ```
//! use pythia::core::{adjudicate, Scheme, VmConfig};
//! use pythia::workloads::all_scenarios;
//!
//! let scenario = &all_scenarios()[0]; // paper Listing 1
//! let cfg = VmConfig::default();
//!
//! let unprotected = adjudicate(scenario, Scheme::Vanilla, &cfg).unwrap();
//! assert!(unprotected.bent, "the attack bends the unprotected branch");
//!
//! let protected = adjudicate(scenario, Scheme::Pythia, &cfg).unwrap();
//! assert!(protected.defense_succeeded(), "Pythia detects it");
//! ```

#![warn(missing_docs)]

pub use pythia_analysis as analysis;
pub use pythia_core as core;
pub use pythia_heap as heap;
pub use pythia_ir as ir;
pub use pythia_lint as lint;
pub use pythia_pa as pa;
pub use pythia_passes as passes;
pub use pythia_vm as vm;
pub use pythia_vm::profile;
pub use pythia_workloads as workloads;
